"""Quorum reads of the repository metadata index (paper section 4.5).

TSR never trusts an individual mirror.  It contacts the fastest f+1 of the
policy's 2f+1 mirrors; if their (signature-valid) indexes disagree, it
contacts additional mirrors until some index value is reported by f+1
mirrors.  Packages themselves may then come from any single mirror because
the quorum-validated index pins their sizes and hashes.

Transfer accounting runs on the shared event-driven engine
(:meth:`Network.gather_scheduled` over the incremental
:class:`repro.simnet.schedule.ParallelTransferSchedule` solver): the
first wave's concurrent index downloads share the TSR host's downlink with
exact max-min accounting — the same model pipeline downloads use — and
extension reads compose onto the same timeline via ``start_at``, so quorum
and pipeline phases can later interleave on one schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive.index import RepositoryIndex, parse_index_cached
from repro.core.policy import MirrorPolicyEntry
from repro.crypto.rsa import RsaPublicKey
from repro.simnet.network import Network, Request
from repro.util.errors import NetworkError, QuorumError


def validate_signed_index(payload: object,
                          index_keys: list[RsaPublicKey]
                          ) -> RepositoryIndex | None:
    """Parse + verify one served index payload; ``None`` if unusable.

    The single trust gate every index answer passes through — mirror
    quorum responses and replica freshness probes alike.  Both halves
    are batched across envelopes: parsing goes through the process-wide
    blob memo and signature verdicts through the RSA verify memo, so N
    endpoints echoing the same signed index cost one parse and one
    modular exponentiation total.
    """
    if not isinstance(payload, (bytes, bytearray)):
        return None
    try:
        index = parse_index_cached(bytes(payload))
    except Exception:
        return None
    if not any(index.verify(key) for key in index_keys):
        return None
    return index


def entry_agreement(indexes: list[RepositoryIndex],
                    needed: int) -> dict[str, dict]:
    """Index entries already certain to be in any eventual quorum value.

    Counts, for every (name, sha256, size) triple, how many of the given
    per-mirror indexes carry it identically, and returns the triples with
    at least ``needed`` (= f+1) votes as ``name -> {"sha256", "size"}``.

    Soundness (pigeonhole): with a 2f+1-mirror policy, the f+1 mirrors
    that eventually vote for the winning index and the f+1 mirrors
    carrying the entry overlap in at least one mirror — and that mirror's
    *single* index response is both the winner and a carrier, so the
    entry is in the winner.  Starting a package download for such an
    entry while quorum extension reads are still in flight is therefore
    pure schedule optimization: it can never change the accepted index or
    the verdicts derived from it (and every optimistically fetched blob
    is still hash-checked against the final quorum index before use).
    """
    votes: dict[tuple[str, str, int], int] = {}
    for index in indexes:
        for entry in index.entries.values():
            key = (entry.name, entry.sha256, entry.size)
            votes[key] = votes.get(key, 0) + 1
    agreed: dict[str, dict] = {}
    for (name, sha256, size), count in votes.items():
        if count >= needed and name not in agreed:
            agreed[name] = {"sha256": sha256, "size": size}
    return agreed


@dataclass
class QuorumResult:
    """Outcome of a quorum read."""

    index: RepositoryIndex
    agreeing_mirrors: list[str]
    contacted: int
    elapsed: float
    #: Mirrors whose answers were invalid or divergent (Byzantine evidence).
    dissenting_mirrors: list[str] = field(default_factory=list)


class QuorumReader:
    """Reads the metadata index with 2f+1 fault tolerance."""

    def __init__(self, network: Network, src_host: str,
                 mirrors: list[MirrorPolicyEntry],
                 index_keys: list[RsaPublicKey]):
        if not mirrors:
            raise QuorumError("no mirrors configured")
        self._network = network
        self._src = src_host
        self._mirrors = list(mirrors)
        self._index_keys = list(index_keys)

    @property
    def fault_tolerance(self) -> int:
        return (len(self._mirrors) - 1) // 2

    def _mirrors_fastest_first(self) -> list[MirrorPolicyEntry]:
        """Order mirrors by expected RTT from the TSR host's continent."""
        src_continent = self._network.host(self._src).continent
        return sorted(
            self._mirrors,
            key=lambda m: self._network.latency.base_rtt(src_continent,
                                                         m.continent),
        )

    def read_index(self) -> QuorumResult:
        """Establish the quorum; raises :class:`QuorumError` if impossible."""
        start = self._network.clock.now()
        ordered = self._mirrors_fastest_first()
        needed = self.fault_tolerance + 1
        votes: dict[str, list[str]] = {}          # body hash -> mirror names
        indexes: dict[str, RepositoryIndex] = {}  # body hash -> parsed index
        dissenting: list[str] = []
        contacted = 0
        cursor = 0
        # Offset of the read's frontier on the shared schedule timeline:
        # each wave starts when the previous one resolved, so extension
        # reads land after the responses that triggered them.
        frontier = 0.0

        def tally(batch: list[MirrorPolicyEntry]):
            nonlocal contacted, frontier
            requests = [Request(m.hostname, "get_index") for m in batch]
            responses = self._network.gather_scheduled(
                self._src, requests, start_at=frontier, advance="none"
            )
            contacted += len(batch)
            finishes: list[float] = []
            for mirror, response in zip(batch, responses):
                if isinstance(response, NetworkError):
                    dissenting.append(mirror.hostname)
                    continue
                finishes.append(response.elapsed)
                index = self._validate(response.payload)
                if index is None:
                    dissenting.append(mirror.hostname)
                    continue
                votes.setdefault(index.body_hash(), []).append(mirror.hostname)
                indexes.setdefault(index.body_hash(), index)
            advanced = (max(finishes) if finishes
                        else frontier + self._network.timeout)
            self._network.clock.advance(advanced - frontier)
            frontier = advanced

        # First wave: the fastest f+1 mirrors, contacted concurrently.
        first_wave = ordered[:needed]
        cursor = len(first_wave)
        tally(first_wave)
        # Extend one mirror at a time until some value reaches f+1 votes.
        while not any(len(v) >= needed for v in votes.values()):
            if cursor >= len(ordered):
                raise QuorumError(
                    f"no index value reached {needed} matching responses "
                    f"({contacted} mirrors contacted, "
                    f"{len(dissenting)} invalid/unreachable)"
                )
            tally([ordered[cursor]])
            cursor += 1

        winning_hash = next(h for h, v in votes.items() if len(v) >= needed)
        agreeing = votes[winning_hash]
        dissenting.extend(
            name for h, names in votes.items() if h != winning_hash
            for name in names
        )
        return QuorumResult(
            index=indexes[winning_hash],
            agreeing_mirrors=agreeing,
            contacted=contacted,
            elapsed=self._network.clock.now() - start,
            dissenting_mirrors=dissenting,
        )

    def _validate(self, payload: object) -> RepositoryIndex | None:
        """Parse + verify one mirror's answer; None if unusable."""
        return validate_signed_index(payload, self._index_keys)
