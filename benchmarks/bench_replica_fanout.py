"""Edge-replica fanout ablation: pull traffic off the primary's uplink.

The replica tier's claim is CDN-shaped: when fleet pull traffic dwarfs
refresh traffic (10x+ by wire bytes here), read-only edge replicas —
synced over the signed index-diff path and freshness-checked by the
rollback oracle before every wave — absorb the pulls, so the primary's
refresh rounds stop queueing behind serve-path fallbacks and their
re-sanitize jobs.  This bench replays the same publish/sync/refresh/pull
trace at 0, 2 and 8 replicas plus a no-serving baseline (pull waves
stripped) and asserts the headline numbers:

* refresh wall-clock at 8 replicas is >= 2x better than at 0 replicas,
  and within ~10% of the no-serving baseline;
* fleet pull p99 improves monotonically with replica count (each
  replica is an independent uplink, so fanout splits the queueing);
* the replicated replay's discrete outcomes — installs, pulled wire
  bytes, per-client serial transitions, published bytes — are
  byte-identical to the primary-only replay.  Replication moves time,
  never content.

The coupling that makes 0 replicas slow is the serve-path fallback:
every wave pins its publication at the refresh start instant, so on the
primary the live cache already holds the *next* round's blobs and each
distinct stale serve queues a re-sanitize job that the following
refresh round must drain first (FIFO on the serial enclave channel).
With replicas the primary never serves pulls, the queue stays empty,
and refresh rounds run at baseline speed.

Scale knobs: ``REPRO_FANOUT_ROUNDS`` / ``REPRO_FANOUT_WAVE`` /
``REPRO_FANOUT_INSTALLS``.  CI runs this emitting
``BENCH_replica_fanout.json``.
"""

import hashlib
import os
import time

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.core.replica import ReplicaTSR
from repro.mirrors.builder import MirrorSpec
from repro.simnet.latency import Continent
from repro.util.stats import human_bytes, human_duration
from repro.workload.generator import Trace, TraceEvent
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

FANOUT_ROUNDS = int(os.environ.get("REPRO_FANOUT_ROUNDS", "12"))
FANOUT_WAVE = int(os.environ.get("REPRO_FANOUT_WAVE", "32"))
FANOUT_INSTALLS = int(os.environ.get("REPRO_FANOUT_INSTALLS", "3"))
FANOUT_HOST_CAP_S = float(os.environ.get("REPRO_FANOUT_HOST_CAP", "120"))

#: Every pull wave rotates in fresh clients (fleet = rounds x wave), so
#: each install is a full pull against the wave's pinned publication —
#: the read pattern that maximizes serve-path pressure on the primary.
FANOUT_FLEET = FANOUT_ROUNDS * FANOUT_WAVE

#: Fraction of the catalog each round's publish mutates.  The primary's
#: re-sanitize debt per round tracks the *union* of two consecutive
#: rounds' change sets (served-stale entries oscillate once and settle),
#: so a moderate fraction keeps that union well above the refresh
#: round's own change set.
FANOUT_FRACTION = 0.35

#: Same-continent mirrors keep the quorum + download share of a refresh
#: round small, so the wall-clock ratio isolates the sanitize channel
#: (where the re-sanitize queue actually bites).
FANOUT_MIRRORS = (
    MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
    MirrorSpec("mirror-eu-2.example", Continent.EUROPE),
    MirrorSpec("mirror-eu-3.example", Continent.EUROPE),
)

REPLICA_COUNTS = (0, 2, 8)


def _fanout_population(count=12, files=40, reps=300):
    """Signature-heavy catalog: many small files per package make the
    per-file signing work dominate sanitize cost while keeping the wire
    bytes (and thus the mirror-download share of refresh) cheap."""
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 300)
                      for j in range(files - 1)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   scripts=scripts, files=pkg_files))
    return packages


def _fanout_trace(pulls=True):
    """Publish / mirror-sync / refresh every 3s; the pull wave lands at
    the refresh start instant, so its pinned publication is one round
    behind the refresh in flight (the stale-serve coupling).  With
    ``pulls=False`` the same publish/refresh schedule runs serving-free
    (the no-serving baseline)."""
    events = []
    for r in range(FANOUT_ROUNDS):
        at = r * 3.0
        events.append(TraceEvent(at=at, kind="publish",
                                 fraction=FANOUT_FRACTION, seed=r))
        events.append(TraceEvent(at=at + 0.2, kind="mirror_sync"))
        events.append(TraceEvent(at=at + 0.4, kind="refresh"))
        if pulls:
            events.append(TraceEvent(
                at=at + 0.4, kind="fleet_pull",
                clients=tuple(range(r * FANOUT_WAVE, (r + 1) * FANOUT_WAVE)),
                installs_per_client=FANOUT_INSTALLS, seed=1000 + r))
    return Trace(events=events, horizon=FANOUT_ROUNDS * 3.0, seed=5)


def _run(replica_count, pulls=True):
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6, packages=_fanout_population(),
        mirror_specs=FANOUT_MIRRORS)
    multi_tenant_refresh(scenario)
    replicas = [ReplicaTSR(f"replica-{i:02d}.example", scenario.tsr,
                           sync_cadence=1.0)
                for i in range(replica_count)]
    report = replay_trace(scenario, _fanout_trace(pulls),
                          clients=FANOUT_FLEET, mode="interleaved",
                          delta_updates=True, replicas=replicas,
                          shared_tpm_seed=2020)
    return scenario, report


def _refresh_wall(report):
    return sum(r.wall_elapsed for r in report.refresh_rounds)


def _serials(report):
    return {client: tuple(serial for _, serial in timeline.transitions)
            for client, timeline in report.timelines.items()}


def _published(scenario):
    """Content signature of every retained publication: serial, signed
    index bytes, and each carried blob — the replicated replay must
    publish byte-identical state."""
    digest = hashlib.sha256()
    for repo_id in scenario.tenants:
        for publication in scenario.tsr.publications(repo_id):
            digest.update(repo_id.encode())
            digest.update(str(publication.serial).encode())
            digest.update(publication.index_bytes)
            for name in sorted(publication.blobs):
                digest.update(name.encode())
                digest.update(publication.blobs[name])
    return digest.hexdigest()


def test_replica_fanout_ablation(benchmark, maybe_profile):
    results = {}

    def run_all():
        out = {"baseline": _run(0, pulls=False)}
        for count in REPLICA_COUNTS:
            out[count] = _run(count)
        return out

    begin = time.perf_counter()
    results = benchmark.pedantic(
        maybe_profile("replica fanout ablation", run_all),
        rounds=1, iterations=1)
    host = time.perf_counter() - begin

    base_scenario, base_report = results["baseline"]
    base_wall = _refresh_wall(base_report)
    walls = {n: _refresh_wall(results[n][1]) for n in REPLICA_COUNTS}
    p99s = {n: results[n][1].pull_latency_quantile(99)
            for n in REPLICA_COUNTS}

    benchmark.extra_info["host_time_s"] = round(host, 3)
    benchmark.extra_info["rounds"] = FANOUT_ROUNDS
    benchmark.extra_info["fleet"] = FANOUT_FLEET
    benchmark.extra_info["refresh_wall_baseline_s"] = round(base_wall, 4)
    for count in REPLICA_COUNTS:
        benchmark.extra_info[f"refresh_wall_{count}_replicas_s"] = round(
            walls[count], 4)
    benchmark.extra_info["refresh_speedup_8_vs_0"] = round(
        walls[0] / walls[8], 3)

    table = PaperTable(
        experiment="Replica fanout",
        title=f"Edge-replica pull fanout ({FANOUT_FLEET} clients, "
              f"{FANOUT_ROUNDS} rounds, pull:refresh wire >= 10x)",
        columns=["replicas", "refresh wall", "vs baseline", "pull p50",
                 "pull p99", "primary fallbacks", "re-sanitize wait",
                 "sync bytes", "refusals"],
    )
    table.add_row("no serving", human_duration(base_wall), "1.00x",
                  "-", "-", 0, "-", 0, 0)
    for count in REPLICA_COUNTS:
        scenario, report = results[count]
        table.add_row(
            count, human_duration(walls[count]),
            f"{walls[count] / base_wall:.2f}x",
            human_duration(report.pull_latency_quantile(50)),
            human_duration(p99s[count]),
            scenario.tsr.serve_fallbacks,
            human_duration(sum(r.resanitize_wait_s
                               for r in report.refresh_rounds)),
            report.replica_sync_bytes,
            report.replica_refusals,
        )
    table.note("identical installs, wire bytes, serials and publications "
               "at every replica count; replication moves time, never "
               "content")
    record_table(table)

    # Pull traffic dwarfs refresh traffic: the CDN regime.
    pull_bytes = sum(results[0][1].pull_wire_bytes)
    refresh_bytes = results[0][1].downloaded_bytes
    assert pull_bytes >= 10 * refresh_bytes

    # Every replay converged with no failed installs and no replica
    # freshness refusals (all replicas stayed within the staleness bound).
    for count in REPLICA_COUNTS:
        report = results[count][1]
        assert report.failed_installs == 0
        assert report.replica_refusals == 0

    # Headline: >= 2x refresh speedup at 8 replicas, within ~10% of the
    # no-serving baseline.
    assert walls[0] >= 2.0 * walls[8], (
        f"refresh wall 0 replicas {walls[0]:.3f}s vs 8 replicas "
        f"{walls[8]:.3f}s: speedup below 2x")
    assert walls[8] <= 1.10 * base_wall, (
        f"8-replica refresh wall {walls[8]:.3f}s more than 10% over "
        f"no-serving baseline {base_wall:.3f}s")

    # Pull p99 improves monotonically with replica count.
    assert p99s[0] > p99s[2] > p99s[8], f"p99 not monotone: {p99s}"

    # Discrete outcomes are byte-identical across replica counts.
    installs = {results[n][1].installs for n in REPLICA_COUNTS}
    wires = {sum(results[n][1].pull_wire_bytes) for n in REPLICA_COUNTS}
    serials = [_serials(results[n][1]) for n in REPLICA_COUNTS]
    published = {_published(results[n][0]) for n in REPLICA_COUNTS}
    assert len(installs) == 1
    assert len(wires) == 1
    assert all(s == serials[0] for s in serials[1:])
    assert len(published) == 1

    # With replicas absorbing every routine pull, the primary's serve
    # path goes quiet: no fallbacks, no re-sanitize debt.
    assert results[8][0].tsr.serve_fallbacks == 0
    assert results[0][0].tsr.serve_fallbacks > 0

    if not maybe_profile.enabled:
        assert host < FANOUT_HOST_CAP_S, (
            f"host time {host:.1f}s over cap {FANOUT_HOST_CAP_S}s")
