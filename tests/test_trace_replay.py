"""Tests for the multi-round trace replay and its supporting layers:
the differential one-round equivalence vs the literal
``multi_tenant_refresh(); fleet_refresh()`` composition, staleness and
availability metrics against hand-computed timelines, cross-replay
determinism inside one process, the resumable orchestrator plan
(nonzero origin), optimistic pre-scan, versioned publications, the
plan fetch session, and LRU-2 scan resistance."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.core.cache import PackageCache
from repro.mirrors.mirror import MirrorBehavior
from repro.simnet.network import PlanFetchSession, Request
from repro.simnet.schedule import ParallelTransferSchedule
from repro.util.errors import NetworkError
from repro.workload.generator import Trace, TraceEvent, generate_trace
from repro.workload.replay import (
    TraceReplay,
    availability_latencies,
    publish_event,
    replay_trace,
    staleness_seconds,
)
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    build_scenario,
    fleet_refresh,
    multi_tenant_refresh,
)

MIRRORS = ("mirror-eu-1.example", "mirror-eu-2.example",
           "mirror-na-1.example")


def _mini_packages(count=8, reps=2000, files=1):
    """Small population; every third package creates accounts."""
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 64)
                      for j in range(files - 1)]
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=pkg_files,
        ))
    return packages


def _one_round_trace(seed=7):
    return Trace(events=[
        TraceEvent(at=0.0, kind="publish", fraction=0.3, seed=seed),
        TraceEvent(at=0.1, kind="mirror_sync"),
        TraceEvent(at=0.2, kind="refresh"),
        TraceEvent(at=1.0, kind="fleet_pull", installs_per_client=1,
                   seed=seed),
    ], horizon=2.0, seed=seed)


# -- trace model ---------------------------------------------------------------


class TestTraceModel:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(at=0.0, kind="nonsense")
        with pytest.raises(ValueError):
            TraceEvent(at=-1.0, kind="publish")

    def test_ordering_is_causal_within_an_instant(self):
        trace = Trace(events=[
            TraceEvent(at=1.0, kind="fleet_pull"),
            TraceEvent(at=1.0, kind="publish"),
            TraceEvent(at=0.5, kind="refresh"),
            TraceEvent(at=1.0, kind="refresh"),
            TraceEvent(at=1.0, kind="mirror_sync"),
        ], horizon=2.0)
        kinds = [(e.at, e.kind) for e in trace.ordered()]
        assert kinds == [(0.5, "refresh"), (1.0, "publish"),
                         (1.0, "mirror_sync"), (1.0, "refresh"),
                         (1.0, "fleet_pull")]

    def test_generate_trace_shape(self):
        trace = generate_trace(rounds=3, interval=2.0, seed=4)
        assert trace.rounds() == 3
        kinds = [e.kind for e in trace.ordered()]
        assert kinds[:4] == ["publish", "mirror_sync", "refresh",
                             "fleet_pull"]
        assert trace.horizon == pytest.approx(3 * 2.0 + 0.8)

    def test_generate_trace_freeze_and_lag(self):
        trace = generate_trace(
            rounds=2, interval=1.0, mirror_names=list(MIRRORS),
            frozen_mirrors=(MIRRORS[0],),
            lagging_mirrors={MIRRORS[2]: 0.5}, seed=1)
        syncs = [e for e in trace.ordered() if e.kind == "mirror_sync"]
        synced = {m for e in syncs for m in e.mirrors}
        assert MIRRORS[0] not in synced  # frozen: never syncs
        lagged = [e for e in syncs if e.mirrors == (MIRRORS[2],)]
        assert lagged[0].at == pytest.approx(0.2 + 0.5)
        with pytest.raises(ValueError):
            generate_trace(rounds=1, interval=1.0,
                           frozen_mirrors=(MIRRORS[0],))
        with pytest.raises(ValueError):
            generate_trace(rounds=0, interval=1.0)

    def test_replay_validates_inputs(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  with_monitor=False)
        with pytest.raises(ValueError):
            TraceReplay(scenario, _one_round_trace(), mode="bogus")


# -- staleness / availability metrics (hand-computed timelines) ---------------


class TestStalenessMetrics:
    def test_never_stale_when_tracking_every_publish(self):
        publishes = [(0.0, 1)]
        transitions = [(1.0, 1)]
        assert staleness_seconds(publishes, transitions, 10.0) == 0.0

    def test_window_between_publish_and_catchup(self):
        publishes = [(0.0, 1), (2.0, 2)]
        transitions = [(1.0, 1), (5.0, 2)]
        # Stale exactly from the serial-2 publish (t=2) to the catch-up
        # pull (t=5).
        assert staleness_seconds(publishes, transitions, 10.0) == \
            pytest.approx(3.0)

    def test_open_staleness_runs_to_horizon(self):
        publishes = [(0.0, 1), (2.0, 2)]
        transitions = [(1.0, 1)]
        assert staleness_seconds(publishes, transitions, 10.0) == \
            pytest.approx(8.0)

    def test_client_joining_late_is_stale_from_its_first_pull(self):
        publishes = [(0.0, 1), (2.0, 2)]
        transitions = [(3.0, 1)]  # first index is already one behind
        assert staleness_seconds(publishes, transitions, 10.0) == \
            pytest.approx(7.0)

    def test_simultaneous_publish_and_pull_counts_stale(self):
        # The pull landing at the very instant a newer serial publishes
        # serves the old serial: the client is stale from that instant.
        publishes = [(0.0, 1), (4.0, 2)]
        transitions = [(0.5, 1), (4.0, 1), (6.0, 2)]
        assert staleness_seconds(publishes, transitions, 10.0) == \
            pytest.approx(2.0)

    def test_no_transitions_means_no_observation(self):
        assert staleness_seconds([(0.0, 1)], [], 10.0) == 0.0

    def test_multi_round_hand_timeline(self):
        # Rounds publish at 0/10/20; the client pulls at 2/12/26.
        publishes = [(0.0, 1), (10.0, 2), (20.0, 3)]
        transitions = [(2.0, 1), (12.0, 2), (26.0, 3)]
        # Stale windows: [10,12] and [20,26].
        assert staleness_seconds(publishes, transitions, 30.0) == \
            pytest.approx(2.0 + 6.0)

    def test_availability_latencies(self):
        publishes = [(0.0, 1), (10.0, 2), (20.0, 3)]
        transitions = [(2.0, 1), (12.0, 2)]
        latencies = availability_latencies(publishes, transitions)
        assert latencies[1] == pytest.approx(2.0)
        assert latencies[2] == pytest.approx(2.0)
        assert latencies[3] is None  # never caught up

    def test_availability_requires_post_publish_pull(self):
        # A serial-2 index pulled *before* serial 2 published cannot
        # satisfy it (and cannot happen in a causal replay); the metric
        # only accepts transitions at or after the publish instant.
        publishes = [(5.0, 1)]
        transitions = [(6.0, 1)]
        assert availability_latencies(publishes, transitions)[1] == \
            pytest.approx(1.0)


# -- differential: one round, one tenant == the literal composition ----------


class TestOneRoundDifferential:
    @pytest.mark.parametrize("mode", ["interleaved", "serial"])
    def test_byte_identical_index_and_packages(self, mode):
        trace = _one_round_trace(seed=7)
        publish = trace.ordered()[0]

        replayed = build_scenario(packages=_mini_packages(), refresh=False,
                                  with_monitor=False)
        multi_tenant_refresh(replayed)  # bootstrap publication
        report = replay_trace(replayed, trace, clients=2, mode=mode)
        assert report.rounds == 1
        assert report.installs > 0

        control = build_scenario(packages=_mini_packages(), refresh=False,
                                 with_monitor=False)
        multi_tenant_refresh(control)
        # The identical upstream release (event-local RNG), then the
        # literal composition the replay replaces.
        publish_event(control, publish, trace.seed)
        control.sync_mirrors()
        multi_tenant_refresh(control)
        fleet_refresh(control, clients=2, installs_per_client=1)

        repo = control.repo_id
        assert control.tsr.get_index_bytes(repo) == \
            replayed.tsr.get_index_bytes(replayed.repo_id)
        from repro.archive.index import RepositoryIndex
        index = RepositoryIndex.from_bytes(control.tsr.get_index_bytes(repo))
        served = 0
        for name in index.entries:
            if not control.tsr.cache.has_sanitized(repo, name):
                continue
            assert control.tsr.serve_package(repo, name) == \
                replayed.tsr.serve_package(replayed.repo_id, name)
            served += 1
        assert served > 0

    def test_modes_agree_on_bytes(self):
        trace = _one_round_trace(seed=9)
        scenarios = {}
        for mode in ("interleaved", "serial"):
            scenario = build_scenario(packages=_mini_packages(),
                                      refresh=False, with_monitor=False)
            multi_tenant_refresh(scenario)
            replay_trace(scenario, trace, clients=2, mode=mode)
            scenarios[mode] = scenario
        a, b = scenarios["interleaved"], scenarios["serial"]
        assert a.tsr.get_index_bytes(a.repo_id) == \
            b.tsr.get_index_bytes(b.repo_id)


# -- multi-round behaviour -----------------------------------------------------


class TestMultiRoundReplay:
    def _replay(self, mode="interleaved", rounds=4, tenants=2, clients=4,
                seed=3, frozen=(), cache_budget=None, policy=None):
        mirror_names = list(MIRRORS) if frozen else None
        trace = generate_trace(rounds=rounds, interval=0.6,
                               publish_fraction=0.3, seed=seed,
                               mirror_names=mirror_names,
                               frozen_mirrors=frozen)
        scenario = build_multi_tenant_scenario(
            tenants=tenants, overlap=0.5, packages=_mini_packages(),
            cache_budget_bytes=cache_budget,
            cache_shards=1 if cache_budget else None,
            cache_policy=policy)
        multi_tenant_refresh(scenario)
        return scenario, replay_trace(scenario, trace, clients=clients,
                                      mode=mode)

    @pytest.mark.parametrize("mode", ["interleaved", "serial"])
    def test_monotonically_consistent_metrics(self, mode):
        _, report = self._replay(mode=mode)
        assert report.rounds == 4
        assert report.timelines
        publishes = report.publishes
        assert all(b[0] >= a[0] and b[1] > a[1]
                   for a, b in zip(publishes, publishes[1:]))
        for timeline in report.timelines.values():
            times = [t for t, _ in timeline.transitions]
            serials = [s for _, s in timeline.transitions]
            assert times == sorted(times)
            assert serials == sorted(serials)
            assert 0.0 <= timeline.staleness <= report.horizon
            for latency in timeline.availability.values():
                assert latency is None or latency >= 0.0
        assert report.wall_elapsed > 0.0
        assert report.horizon >= report.wall_elapsed - 1e-9

    def test_state_carries_across_rounds(self):
        """Incremental rounds ride the content cache: later refreshes
        re-download only what changed, and the publication log grows."""
        scenario, report = self._replay(mode="interleaved", rounds=4)
        # Round 1 of the trace changed only a fraction of the catalog:
        # every refresh after the bootstrap is incremental.
        population = len(scenario.population)
        for round_report in report.refresh_rounds:
            for repo_report in round_report.reports.values():
                assert len(repo_report.changed_packages) < population
        publications = scenario.tsr.publications(scenario.repo_id)
        assert len(publications) == 1 + report.rounds  # bootstrap + rounds
        available = [p.available_at for p in publications]
        assert available == sorted(available)
        serials = [p.serial for p in publications]
        assert serials == sorted(serials)

    def test_prescan_fires_on_incremental_widened_rounds(self):
        _, report = self._replay(mode="interleaved", rounds=3,
                                 frozen=(MIRRORS[0],))
        assert report.prescans > 0

    def test_replays_reproducible_and_independent_in_one_process(self):
        """Two traces replayed in one process must be reproducible
        independently: interleaving a second replay (in either order)
        cannot change the first's results — randomness is threaded, not
        ambient."""
        def signature(report):
            return (
                report.wall_elapsed,
                report.installs,
                report.publishes,
                {name: tuple(t.transitions)
                 for name, t in report.timelines.items()},
                {name: t.staleness
                 for name, t in report.timelines.items()},
            )

        first_a = signature(self._replay(seed=3)[1])
        first_b = signature(self._replay(seed=11, rounds=3)[1])
        # Opposite construction/run order in the same process.
        second_b = signature(self._replay(seed=11, rounds=3)[1])
        second_a = signature(self._replay(seed=3)[1])
        assert first_a == second_a
        assert first_b == second_b

    def test_serial_mode_never_overlaps_rounds(self):
        _, report = self._replay(mode="serial")
        rounds = report.refresh_rounds
        for earlier, later in zip(rounds, rounds[1:]):
            assert later.origin >= earlier.finished_at - 1e-9

    def test_clients_spread_over_tenants(self):
        scenario, report = self._replay(tenants=2, clients=4)
        repos = {t.repo_id for t in report.timelines.values()}
        assert repos == set(scenario.tenants)


# -- versioned publications ----------------------------------------------------


class TestPublications:
    def _refreshed(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  with_monitor=False)
        return scenario

    def test_record_and_select(self):
        scenario = self._refreshed()
        tsr = scenario.tsr
        first = tsr.record_publication(scenario.repo_id, 1.0)
        assert tsr.publication_at(scenario.repo_id, 0.5) is None
        assert tsr.publication_at(scenario.repo_id, 1.0) is first
        assert tsr.publication_at(scenario.repo_id, 9.0) is first
        with pytest.raises(NetworkError):
            tsr.index_bytes_at(scenario.repo_id, 0.5)
        assert tsr.index_bytes_at(scenario.repo_id, 2.0) == \
            tsr.get_index_bytes(scenario.repo_id)

    def test_served_blobs_match_live_serving(self):
        scenario = self._refreshed()
        tsr = scenario.tsr
        tsr.record_publication(scenario.repo_id, 0.0)
        for name in ("pkg-00", "pkg-01"):
            assert tsr.serve_package_at(scenario.repo_id, name, 0.0) == \
                tsr.serve_package(scenario.repo_id, name)

    def test_available_at_clamped_monotonic(self):
        scenario = self._refreshed()
        tsr = scenario.tsr
        tsr.record_publication(scenario.repo_id, 5.0)
        late = tsr.record_publication(scenario.repo_id, 3.0)
        assert late.available_at == 5.0

    def test_old_publication_survives_new_refresh(self):
        """A client pinned to an old instant keeps seeing the old index
        even after the live state moved on."""
        scenario = self._refreshed()
        tsr = scenario.tsr
        old = tsr.record_publication(scenario.repo_id, 0.0)
        publish_event(scenario, TraceEvent(at=0.0, kind="publish",
                                           fraction=0.5, seed=1), 1)
        scenario.sync_mirrors()
        multi_tenant_refresh(scenario)
        tsr.record_publication(scenario.repo_id, 10.0)
        assert tsr.index_bytes_at(scenario.repo_id, 0.5) == old.index_bytes
        assert tsr.index_bytes_at(scenario.repo_id, 10.0) == \
            tsr.get_index_bytes(scenario.repo_id)
        assert tsr.publication_at(scenario.repo_id, 10.0).serial > old.serial


# -- plan fetch session --------------------------------------------------------


class TestPlanFetchSession:
    def _scenario(self):
        return build_scenario(packages=_mini_packages(count=4),
                              with_monitor=False)

    def test_wave_pins_start_offsets(self):
        scenario = self._scenario()
        schedule = ParallelTransferSchedule(downlink_bandwidth=3 * 2 ** 20)
        session = PlanFetchSession(scenario.network, schedule)
        node, _ = scenario.new_node("puller", session=None)
        session.begin_wave(5.0)
        session.fetch("puller", Request(scenario.tsr.hostname, "get_index",
                                        payload=scenario.repo_id),
                      channel="puller")
        timings = schedule.solve()
        key = session.last_key("puller")
        # The wave gap rides in the setup phase: the transfer cannot
        # complete before the wave instant plus its own network time.
        assert timings[key].finish > 5.0
        assert timings[key].duration >= 5.0

    def test_waves_must_be_time_ordered(self):
        scenario = self._scenario()
        session = PlanFetchSession(scenario.network,
                                   ParallelTransferSchedule())
        session.begin_wave(5.0)
        with pytest.raises(NetworkError):
            session.begin_wave(4.0)

    def test_second_wave_queues_behind_first(self):
        scenario = self._scenario()
        schedule = ParallelTransferSchedule(downlink_bandwidth=3 * 2 ** 20)
        session = PlanFetchSession(scenario.network, schedule)
        scenario.new_node("puller", session=None)
        request = Request(scenario.tsr.hostname, "get_index",
                          payload=scenario.repo_id)
        session.begin_wave(0.0)
        session.fetch("puller", request, channel="puller")
        first_end = schedule.solve()[session.last_key("puller")].finish
        # Wave 2 nominally starts *before* wave 1's transfer drains: the
        # channel serializes, so it starts at the channel's free instant.
        session.begin_wave(min(first_end / 2, first_end - 1e-6))
        session.fetch("puller", request, channel="puller")
        timings = schedule.solve()
        assert timings[session.last_key("puller")].start >= \
            first_end - 1e-9

    def test_failed_fetch_charges_timeout_and_raises(self):
        scenario = self._scenario()
        schedule = ParallelTransferSchedule()
        session = PlanFetchSession(scenario.network, schedule)
        scenario.new_node("puller", session=None)
        scenario.network.set_down(scenario.tsr.hostname)
        session.begin_wave(1.0)
        with pytest.raises(NetworkError):
            session.fetch("puller",
                          Request(scenario.tsr.hostname, "get_index",
                                  payload=scenario.repo_id),
                          channel="puller")
        timings = schedule.solve()
        key = session.last_key("puller")
        assert timings[key].finish == pytest.approx(
            1.0 + scenario.network.timeout)


# -- resumable orchestrator plan ----------------------------------------------


class TestPlanOrigin:
    def test_nonzero_origin_shifts_timeline(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  refresh=False, with_monitor=False)
        from repro.core.orchestrator import RefreshOrchestrator
        before = scenario.clock.now()
        report = RefreshOrchestrator(scenario.tsr, [scenario.repo_id],
                                     origin=3.0).run()
        assert report.origin == 3.0
        assert report.finished_at >= 3.0
        assert report.wall_elapsed == pytest.approx(
            report.finished_at - 3.0)
        # Standalone rounds advance the clock by their own duration only.
        assert scenario.clock.now() - before == pytest.approx(
            report.wall_elapsed)
        assert report.reports[scenario.repo_id].quorum_elapsed >= 0.0

    def test_origin_validation(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  refresh=False, with_monitor=False)
        from repro.core.orchestrator import RefreshOrchestrator
        with pytest.raises(ValueError):
            RefreshOrchestrator(scenario.tsr, [scenario.repo_id],
                                origin=-1.0)

    def test_plan_state_serializes_enclave_across_rounds(self):
        from repro.core.orchestrator import (
            RefreshOrchestrator,
            RefreshPlanState,
        )
        scenario = build_scenario(packages=_mini_packages(count=6),
                                  refresh=False, with_monitor=False)
        plan = RefreshPlanState()
        first = RefreshOrchestrator(scenario.tsr, [scenario.repo_id],
                                    origin=0.0, plan_state=plan,
                                    advance_clock=False).run()
        assert plan.rounds == 1
        assert plan.enclave_free > 0.0
        publish_event(scenario, TraceEvent(at=0.0, kind="publish",
                                           fraction=0.4, seed=2), 2)
        scenario.sync_mirrors()
        second = RefreshOrchestrator(scenario.tsr, [scenario.repo_id],
                                     origin=0.1, plan_state=plan,
                                     advance_clock=False).run()
        assert plan.rounds == 2
        # Round 2's sanitize jobs queued behind round 1's enclave work.
        round_two = [entry for entry in plan.timeline
                     if entry not in first.enclave_timeline]
        assert second.finished_at >= first.finished_at - 1e-9
        for _, _, start, _ in second.enclave_timeline:
            assert start >= first.enclave_timeline[-1][3] - 1e-9
        assert round_two  # the shared timeline accumulated


# -- optimistic pre-scan -------------------------------------------------------


class TestPrescan:
    def test_prescan_on_widened_incremental_round(self):
        scenario = build_scenario(packages=_mini_packages(count=6),
                                  refresh=False, with_monitor=False)
        scenario.tsr.refresh(scenario.repo_id)  # warm the named cache
        scenario.mirrors[MIRRORS[0]].behavior = MirrorBehavior.FREEZE
        publish_event(scenario, TraceEvent(at=0.0, kind="publish",
                                           fraction=0.2, seed=5), 5)
        scenario.sync_mirrors()
        orch = multi_tenant_refresh(scenario, repo_ids=[scenario.repo_id])
        report = orch.reports[scenario.repo_id]
        # The unchanged cached packages were pre-scanned while the quorum
        # widened past the frozen mirror.
        assert report.prescanned > 0
        assert report.sanitized == len(report.changed_packages)

    def test_prescan_does_not_change_bytes(self):
        def build():
            scenario = build_scenario(packages=_mini_packages(count=6),
                                      refresh=False, with_monitor=False)
            scenario.tsr.refresh(scenario.repo_id)
            scenario.mirrors[MIRRORS[0]].behavior = MirrorBehavior.FREEZE
            publish_event(scenario, TraceEvent(at=0.0, kind="publish",
                                               fraction=0.2, seed=5), 5)
            scenario.sync_mirrors()
            return scenario

        orchestrated, phased = build(), build()
        orch = multi_tenant_refresh(orchestrated,
                                    repo_ids=[orchestrated.repo_id])
        phased.tsr.refresh(phased.repo_id)
        assert orch.reports[orchestrated.repo_id].prescanned > 0
        assert orchestrated.tsr.get_index_bytes(orchestrated.repo_id) == \
            phased.tsr.get_index_bytes(phased.repo_id)


# -- LRU-2 scan resistance -----------------------------------------------------


class TestLru2:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PackageCache(policy="arc")

    def test_second_touch_promotes(self):
        cache = PackageCache(shards=1, shard_budget_bytes=1000)
        cache.put_original("r", "hot", b"h" * 100)
        assert cache.shard_stats()[0].promotions == 0
        cache.get_original("r", "hot")
        assert cache.shard_stats()[0].promotions == 1

    def test_scan_cannot_flush_protected_core(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        cache.put_original("r", "hot", b"h" * 40)
        cache.get_original("r", "hot")  # second touch -> protected
        for i in range(10):  # a one-touch scan three times the budget
            cache.put_original("r", f"scan-{i}", b"s" * 30)
        assert cache.get_original("r", "hot") == b"h" * 40

    def test_plain_lru_flushes_under_same_scan(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100,
                             policy="lru")
        cache.put_original("r", "hot", b"h" * 40)
        cache.get_original("r", "hot")
        for i in range(10):
            cache.put_original("r", f"scan-{i}", b"s" * 30)
        assert cache.get_original("r", "hot") is None
        assert cache.shard_stats()[0].promotions == 0

    def test_protected_evicts_when_probation_empty(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        cache.put_original("r", "a", b"a" * 60)
        cache.get_original("r", "a")
        cache.put_original("r", "b", b"b" * 30)
        cache.get_original("r", "b")  # both protected, probation empty
        cache.put_original("r", "c", b"c" * 50)  # evicts a (protected LRU)
        assert cache.get_original("r", "a") is None
        assert cache.get_original("r", "b") is not None

    def test_rewrite_counts_as_second_touch(self):
        cache = PackageCache(shards=1, shard_budget_bytes=1000)
        cache.put_original("r", "a", b"a" * 10)
        cache.put_original("r", "a", b"a" * 20)
        assert cache.shard_stats()[0].promotions == 1
        assert cache.shard_used_bytes(0) == 20

    def test_peek_does_not_touch_recency(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        cache.put_sanitized("r", "a", b"a" * 40)
        assert cache.peek_sanitized("r", "a") == b"a" * 40
        assert cache.shard_stats()[0].promotions == 0
        assert cache.peek_sanitized("r", "missing") is None
