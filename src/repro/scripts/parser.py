"""Recursive-descent parser for the shell subset."""

from __future__ import annotations

from repro.scripts.lexer import Token, TokenType, tokenize
from repro.scripts.shell_ast import (
    Command,
    ConditionalList,
    IfStatement,
    Pipeline,
    Redirect,
    Script,
    Statement,
)
from repro.util.errors import ScriptError

_RESERVED = {"if", "then", "else", "fi"}


class _TokenStream:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ScriptError("unexpected end of script")
        self._pos += 1
        return token

    def skip_newlines_and_semis(self):
        while (token := self.peek()) is not None and token.type in (
            TokenType.NEWLINE,
            TokenType.SEMI,
        ):
            self._pos += 1

    def at_word(self, value: str | None = None) -> bool:
        token = self.peek()
        if token is None or token.type is not TokenType.WORD:
            return False
        return value is None or token.value == value


def parse_script(source: str) -> Script:
    """Parse shell source into a :class:`Script` AST."""
    shebang = None
    if source.startswith("#!"):
        first_line, _, rest = source.partition("\n")
        shebang = first_line
        source = rest
    stream = _TokenStream(tokenize(source))
    statements = _parse_statements(stream, terminators=frozenset())
    if stream.peek() is not None:
        token = stream.peek()
        raise ScriptError(f"unexpected token {token.value!r} at line {token.line}")
    return Script(statements=statements, shebang=shebang)


def _parse_statements(stream: _TokenStream, terminators: frozenset[str]) -> list[Statement]:
    statements: list[Statement] = []
    while True:
        stream.skip_newlines_and_semis()
        token = stream.peek()
        if token is None:
            break
        if token.type is TokenType.WORD and token.value in terminators:
            break
        statements.append(_parse_statement(stream, terminators))
    return statements


def _parse_statement(stream: _TokenStream, terminators: frozenset[str]) -> Statement:
    if stream.at_word("if"):
        return _parse_if(stream)
    return _parse_conditional_list(stream, terminators)


def _parse_if(stream: _TokenStream) -> IfStatement:
    start = stream.next()  # consume 'if'
    condition = _parse_conditional_list(stream, terminators=frozenset({"then"}))
    stream.skip_newlines_and_semis()
    if not stream.at_word("then"):
        raise ScriptError(f"'if' at line {start.line} missing 'then'")
    stream.next()
    then_body = _parse_statements(stream, terminators=frozenset({"else", "fi"}))
    else_body: list[Statement] = []
    if stream.at_word("else"):
        stream.next()
        else_body = _parse_statements(stream, terminators=frozenset({"fi"}))
    if not stream.at_word("fi"):
        raise ScriptError(f"'if' at line {start.line} missing 'fi'")
    stream.next()
    return IfStatement(condition=condition, then_body=then_body, else_body=else_body)


def _parse_conditional_list(stream: _TokenStream,
                            terminators: frozenset[str]) -> ConditionalList:
    pipelines = [_parse_pipeline(stream, terminators)]
    connectors: list[str] = []
    while True:
        token = stream.peek()
        if token is None:
            break
        if token.type in (TokenType.AND_IF, TokenType.OR_IF):
            stream.next()
            # Allow the next pipeline on a following line.
            while (nxt := stream.peek()) is not None and nxt.type is TokenType.NEWLINE:
                stream.next()
            connectors.append(token.value)
            pipelines.append(_parse_pipeline(stream, terminators))
        elif token.type is TokenType.SEMI:
            # Lookahead: `; then` terminates the condition of an if-statement.
            stream.next()
            nxt = stream.peek()
            if nxt is None or nxt.type is TokenType.NEWLINE:
                break
            if nxt.type is TokenType.WORD and nxt.value in terminators:
                break
            if nxt.type is TokenType.WORD and nxt.value in _RESERVED:
                break
            connectors.append(";")
            pipelines.append(_parse_pipeline(stream, terminators))
        else:
            break
    return ConditionalList(pipelines=pipelines, connectors=connectors)


def _parse_pipeline(stream: _TokenStream, terminators: frozenset[str]) -> Pipeline:
    commands = [_parse_command(stream, terminators)]
    while (token := stream.peek()) is not None and token.type is TokenType.PIPE:
        stream.next()
        commands.append(_parse_command(stream, terminators))
    return Pipeline(commands=commands)


def _parse_command(stream: _TokenStream, terminators: frozenset[str]) -> Command:
    token = stream.peek()
    if token is None or token.type is not TokenType.WORD:
        got = "end of script" if token is None else repr(token.value)
        raise ScriptError(f"expected a command, got {got}")
    if token.value in _RESERVED and token.value in terminators:
        raise ScriptError(f"unexpected keyword {token.value!r} at line {token.line}")
    name_token = stream.next()
    command = Command(name=name_token.value, line=name_token.line)
    while (token := stream.peek()) is not None:
        if token.type is TokenType.WORD:
            if token.value in terminators:
                break
            command.args.append(stream.next().value)
        elif token.type in (TokenType.REDIRECT_OUT, TokenType.REDIRECT_APPEND):
            stream.next()
            target = stream.peek()
            if target is None or target.type is not TokenType.WORD:
                raise ScriptError(
                    f"redirection at line {token.line} missing target path"
                )
            command.redirect = Redirect(
                path=stream.next().value,
                append=token.type is TokenType.REDIRECT_APPEND,
            )
        else:
            break
    return command
