"""Synchronous request/response transport over the latency model.

Hosts register a handler; callers issue requests that advance the shared
:class:`SimClock` by RTT plus payload transfer plus handler processing time.
``gather`` models concurrent fan-out (the quorum reader contacts several
mirrors at once): the clock advances to the *slowest completed* request, but
each response records its individual completion offset.

Failure injection: hosts can be taken down (requests fail after a timeout)
and pairs of hosts can be partitioned — the paper's adversary "prevents
network connection to the original repository and arbitrary mirrors".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.simnet.clock import SimClock
from repro.simnet.latency import (
    Continent,
    DEFAULT_BANDWIDTH_BYTES_PER_S,
    LatencyModel,
)
from repro.util.errors import NetworkError

DEFAULT_TIMEOUT_S = 5.0


@dataclass
class Request:
    """A request addressed to a host; ``payload`` is handler-defined."""

    target: str
    operation: str
    payload: object = None
    size_bytes: int = 256  # small control message by default


@dataclass
class Response:
    """Handler result plus transport accounting."""

    payload: object
    size_bytes: int
    elapsed: float  # seconds from issue to completion (simulated)


@dataclass
class Host:
    """A network endpoint with a handler and failure state."""

    name: str
    continent: Continent
    handler: Callable[[str, object], tuple[object, int]] | None = None
    processing_time: float = 0.0005
    bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S
    up: bool = True
    # Extra one-way delay, used to model overloaded or throttled mirrors.
    extra_delay: float = 0.0
    #: When set, concurrent ``gather`` responses share this sustained
    #: download bandwidth at the *receiving* host (the NIC bottleneck that
    #: makes quorum latency grow with mirror count, Fig. 13).
    downlink_bandwidth: float | None = None

    def handle(self, operation: str, payload: object) -> tuple[object, int]:
        if self.handler is None:
            raise NetworkError(f"host {self.name} has no handler registered")
        return self.handler(operation, payload)


class Network:
    """Host registry and transport; owns the latency model."""

    def __init__(self, clock: SimClock | None = None,
                 latency: LatencyModel | None = None,
                 timeout: float = DEFAULT_TIMEOUT_S):
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel()
        self.timeout = timeout
        self._hosts: dict[str, Host] = {}
        self._partitions: set[frozenset[str]] = set()

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise NetworkError(f"host already registered: {host.name}")
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def set_down(self, name: str, down: bool = True):
        self.host(name).up = not down

    def partition(self, a: str, b: str):
        """Block traffic between two hosts (adversarial network control)."""
        self._partitions.add(frozenset([a, b]))

    def heal(self, a: str, b: str):
        self._partitions.discard(frozenset([a, b]))

    def _reachable(self, src: str, dst: str) -> bool:
        return frozenset([src, dst]) not in self._partitions

    def _completion_parts(self, src: Host,
                          request: Request) -> tuple[object, int, float, float]:
        """Compute (payload, response size, pre-download offset, download).

        The pre-download offset covers RTT, request upload, server
        processing and throttling; the download part is reported separately
        so ``gather`` can model a shared receiver downlink.
        """
        dst = self.host(request.target)
        if not dst.up or not self._reachable(src.name, dst.name):
            # A dead or partitioned peer manifests as a timeout.
            raise NetworkError(
                f"request from {src.name} to {request.target} timed out "
                f"after {self.timeout}s"
            )
        rtt = self.latency.rtt(src.continent, dst.continent)
        payload_up = self.latency.transfer_time(request.size_bytes, dst.bandwidth)
        result, response_size = dst.handle(request.operation, request.payload)
        payload_down = self.latency.transfer_time(response_size, dst.bandwidth)
        pre = rtt + payload_up + dst.processing_time + dst.extra_delay
        if pre + payload_down > self.timeout:
            raise NetworkError(
                f"request from {src.name} to {request.target} exceeded "
                f"timeout ({pre + payload_down:.3f}s > {self.timeout}s)"
            )
        return result, response_size, pre, payload_down

    def _completion_offset(self, src: Host, request: Request) -> tuple[object, int, float]:
        """Compute (response payload, response size, completion offset)."""
        payload, size, pre, download = self._completion_parts(src, request)
        return payload, size, pre + download

    def call(self, src_name: str, request: Request) -> Response:
        """Issue a single request; advances the clock by its full latency."""
        src = self.host(src_name)
        payload, size, offset = self._completion_offset(src, request)
        self.clock.advance(offset)
        return Response(payload=payload, size_bytes=size, elapsed=offset)

    def gather(self, src_name: str, requests: list[Request],
               advance: str = "max") -> list[Response | NetworkError]:
        """Issue requests concurrently.

        Returns one entry per request: a :class:`Response` or the
        :class:`NetworkError` the request failed with.  The clock advances by
        the slowest *successful* completion (``advance="max"``) — timeouts do
        not stall the caller because the quorum logic proceeds as soon as it
        has enough answers — or by the timeout if every request failed.
        """
        if advance not in ("max", "none"):
            raise ValueError(f"unsupported advance mode: {advance}")
        src = self.host(src_name)
        results: list[Response | NetworkError] = []
        pres: list[float] = []
        downloads: list[float] = []
        sizes: list[int] = []
        for request in requests:
            try:
                payload, size, pre, download = self._completion_parts(src, request)
            except NetworkError as exc:
                results.append(exc)
            else:
                results.append(Response(payload=payload, size_bytes=size,
                                        elapsed=pre + download))
                pres.append(pre)
                downloads.append(download)
                sizes.append(size)
        if not pres:
            if advance == "max":
                self.clock.advance(self.timeout)
            return results
        if src.downlink_bandwidth is not None and len(sizes) > 1:
            # Concurrent responses contend for the receiver's NIC: total
            # transfer time is bounded by the shared downlink.
            shared = self.latency.transfer_time(sum(sizes),
                                                src.downlink_bandwidth)
            total = max(pres) + max(shared, max(downloads))
        else:
            total = max(pre + down for pre, down in zip(pres, downloads))
        if advance == "max":
            self.clock.advance(total)
        return results
