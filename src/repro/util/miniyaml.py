"""A small YAML-subset parser and emitter for TSR security policies.

PyYAML is not available offline, and the policy format from the paper
(Listing 1) only needs a well-defined subset of YAML:

* nested mappings with ``key: value`` pairs,
* block sequences with ``- `` items (scalars or mappings),
* literal block scalars ``|-`` / ``|`` (used for PEM certificate blobs),
* comments introduced with ``#`` outside of block scalars,
* plain scalars (strings, ints, floats, booleans, null).

The grammar is indentation-based, two or more spaces per level, exactly like
the policy examples shipped with this repository.  Anything outside the
subset raises :class:`MiniYamlError` with a line number so policy authors get
actionable feedback.
"""

from __future__ import annotations

from repro.util.errors import ReproError


class MiniYamlError(ReproError):
    """Raised when input does not conform to the supported YAML subset."""

    def __init__(self, message: str, line: int | None = None):
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class _Line:
    """A significant (non-blank, non-comment) input line."""

    __slots__ = ("number", "indent", "content")

    def __init__(self, number: int, indent: int, content: str):
        self.number = number
        self.indent = indent
        self.content = content


def _significant_lines(text: str) -> list[_Line]:
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        leading = raw[:len(raw) - len(raw.lstrip())]
        if "\t" in leading:
            raise MiniYamlError("tabs are not allowed in indentation", number)
        indent = len(raw) - len(raw.lstrip(" "))
        lines.append(_Line(number, indent, stripped))
    return lines


def _parse_scalar(token: str):
    """Interpret a plain scalar: quotes, booleans, null, numbers, strings."""
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    lowered = token.lower()
    if lowered in ("null", "~"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _strip_inline_comment(value: str) -> str:
    """Drop a trailing ``# comment`` from an unquoted scalar."""
    if value.startswith(('"', "'")):
        return value
    in_field = True
    for index, char in enumerate(value):
        if char == "#" and in_field and (index == 0 or value[index - 1] in " \t"):
            return value[:index].rstrip()
    return value


class _Parser:
    def __init__(self, text: str):
        self._raw_lines = text.splitlines()
        self._lines = _significant_lines(text)
        self._pos = 0

    def parse(self):
        if not self._lines:
            return {}
        value = self._parse_block(self._lines[0].indent)
        if self._pos != len(self._lines):
            line = self._lines[self._pos]
            raise MiniYamlError("unexpected trailing content", line.number)
        return value

    def _peek(self) -> _Line | None:
        if self._pos < len(self._lines):
            return self._lines[self._pos]
        return None

    def _parse_block(self, indent: int):
        line = self._peek()
        if line is None:
            raise MiniYamlError("unexpected end of input")
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(indent)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> list:
        items = []
        while True:
            line = self._peek()
            if line is None or line.indent != indent:
                break
            if not (line.content.startswith("- ") or line.content == "-"):
                break
            self._pos += 1
            rest = line.content[1:].strip()
            if not rest:
                child = self._peek()
                if child is None or child.indent <= indent:
                    items.append(None)
                else:
                    items.append(self._parse_block(child.indent))
            elif rest.startswith("|"):
                # Block content must be indented past the dash column itself.
                items.append(self._parse_block_scalar(rest, line, indent))
            elif ":" in rest and not rest.startswith(('"', "'")):
                # A mapping whose first entry shares the dash line. Subsequent
                # entries are indented to the column right after "- ".
                items.append(self._parse_inline_mapping(rest, line, indent + 2))
            else:
                items.append(_parse_scalar(_strip_inline_comment(rest)))
        return items

    def _parse_inline_mapping(self, first_entry: str, line: _Line, indent: int) -> dict:
        mapping = {}
        key, value = self._split_key(first_entry, line.number)
        self._store_entry(mapping, key, value, line, indent)
        while True:
            nxt = self._peek()
            if nxt is None or nxt.indent != indent or nxt.content.startswith("- "):
                break
            self._pos += 1
            key, value = self._split_key(nxt.content, nxt.number)
            self._store_entry(mapping, key, value, nxt, indent)
        return mapping

    def _parse_mapping(self, indent: int) -> dict:
        mapping = {}
        while True:
            line = self._peek()
            if line is None or line.indent != indent:
                break
            if line.content.startswith("- "):
                break
            self._pos += 1
            key, value = self._split_key(line.content, line.number)
            self._store_entry(mapping, key, value, line, indent)
        return mapping

    def _split_key(self, content: str, number: int) -> tuple[str, str]:
        if ":" not in content:
            raise MiniYamlError(f"expected 'key: value', got {content!r}", number)
        key, _, value = content.partition(":")
        key = key.strip()
        if not key:
            raise MiniYamlError("empty mapping key", number)
        return _parse_scalar(key), value.strip()

    def _store_entry(self, mapping: dict, key, value: str, line: _Line, indent: int):
        if key in mapping:
            raise MiniYamlError(f"duplicate key {key!r}", line.number)
        if not value:
            child = self._peek()
            if child is None or child.indent <= indent:
                mapping[key] = None
            else:
                mapping[key] = self._parse_block(child.indent)
        elif value.startswith("|"):
            mapping[key] = self._parse_block_scalar(value, line, indent)
        else:
            mapping[key] = _parse_scalar(_strip_inline_comment(value))

    def _parse_block_scalar(self, marker: str, line: _Line, parent_indent: int) -> str:
        marker = _strip_inline_comment(marker).strip()
        if marker not in ("|", "|-", "|+"):
            raise MiniYamlError(f"unsupported block scalar marker {marker!r}", line.number)
        # Collect raw lines more indented than the parent until dedent.
        start_raw = line.number  # line numbers are 1-based, content starts after
        collected: list[str] = []
        block_indent: int | None = None
        raw_index = start_raw
        while raw_index < len(self._raw_lines):
            raw = self._raw_lines[raw_index]
            if not raw.strip():
                collected.append("")
                raw_index += 1
                continue
            indent = len(raw) - len(raw.lstrip(" "))
            if indent <= parent_indent:
                break
            if block_indent is None:
                block_indent = indent
            collected.append(raw[block_indent:])
            raw_index += 1
        # Advance the significant-line cursor past consumed lines.
        while self._pos < len(self._lines) and self._lines[self._pos].number <= raw_index:
            self._pos += 1
        while collected and not collected[-1]:
            collected.pop()
        body = "\n".join(collected)
        if marker == "|":
            body += "\n"
        return body


def parse_yaml(text: str):
    """Parse a YAML-subset document into dicts / lists / scalars."""
    return _Parser(text).parse()


def _needs_quoting(value: str) -> bool:
    if value == "" or value != value.strip():
        return True
    if value[0] in "-?:#&*!|>'\"%@`[]{},":
        return True
    if ": " in value or value.lower() in ("null", "true", "false", "~"):
        return True
    try:
        float(value)
    except ValueError:
        return False
    return True


def _dump_scalar(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if _needs_quoting(text):
        escaped = text.replace('"', '\\"')
        return f'"{escaped}"'
    return text


def _dump_node(node, indent: int, out: list[str]):
    pad = " " * indent
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, dict) and value:
                out.append(f"{pad}{key}:")
                _dump_node(value, indent + 2, out)
            elif isinstance(value, list) and value:
                out.append(f"{pad}{key}:")
                _dump_node(value, indent + 2, out)
            elif isinstance(value, str) and "\n" in value:
                out.append(f"{pad}{key}: |-")
                for line in value.splitlines():
                    out.append(f"{pad}  {line}")
            else:
                out.append(f"{pad}{key}: {_dump_scalar(value)}")
    elif isinstance(node, list):
        for item in node:
            if isinstance(item, dict) and item:
                first = True
                keys = list(item.keys())
                for key in keys:
                    value = item[key]
                    prefix = f"{pad}- " if first else f"{pad}  "
                    first = False
                    if isinstance(value, (dict, list)) and value:
                        out.append(f"{prefix}{key}:")
                        _dump_node(value, indent + 4, out)
                    elif isinstance(value, str) and "\n" in value:
                        out.append(f"{prefix}{key}: |-")
                        for line in value.splitlines():
                            out.append(f"{pad}    {line}")
                    else:
                        out.append(f"{prefix}{key}: {_dump_scalar(value)}")
            elif isinstance(item, str) and "\n" in item:
                out.append(f"{pad}- |-")
                for line in item.splitlines():
                    out.append(f"{pad}  {line}")
            else:
                out.append(f"{pad}- {_dump_scalar(item)}")
    else:
        out.append(f"{pad}{_dump_scalar(node)}")


def dump_yaml(node) -> str:
    """Emit dicts / lists / scalars as a document `parse_yaml` can read back."""
    out: list[str] = []
    _dump_node(node, 0, out)
    return "\n".join(out) + "\n"
