"""Bench harness: paper-vs-measured tables and shared cost constants."""

from repro.bench.report import PaperTable, record_table, recorded_tables, reset_tables
from repro.bench.costs import InstallCostModel

__all__ = [
    "PaperTable",
    "record_table",
    "recorded_tables",
    "reset_tables",
    "InstallCostModel",
]
