"""The TPM device model.

Implements what the paper's stack depends on:

* a SHA-256 PCR bank with ``extend`` semantics (``pcr = H(pcr || digest)``),
* an event log recording every extend (the measured-boot log),
* quotes — signatures over (selected PCRs, nonce) under an attestation key
  created inside the TPM, so verifiers can trust reported PCR values,
* NV monotonic counters that can only ever increase,
* a small NV storage area.

The attestation key never leaves the device object: callers get the public
part only, mirroring a real TPM's restricted signing key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.hashes import SHA256_DIGEST_SIZE, sha256_bytes
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.util.errors import AttestationError, ReproError

PCR_COUNT = 24
IMA_PCR_INDEX = 10  # Linux IMA extends its measurements into PCR 10


class TpmError(ReproError):
    """A TPM command failed."""


@dataclass
class EventLogEntry:
    """One measured event: which PCR, the digest, and a description."""

    pcr_index: int
    digest: bytes
    description: str


class PcrBank:
    """The SHA-256 PCR bank."""

    def __init__(self):
        self._values = [bytes(SHA256_DIGEST_SIZE) for _ in range(PCR_COUNT)]

    def read(self, index: int) -> bytes:
        self._check_index(index)
        return self._values[index]

    def extend(self, index: int, digest: bytes) -> bytes:
        self._check_index(index)
        if len(digest) != SHA256_DIGEST_SIZE:
            raise TpmError(
                f"extend digest must be {SHA256_DIGEST_SIZE} bytes, got {len(digest)}"
            )
        self._values[index] = sha256_bytes(self._values[index] + digest)
        return self._values[index]

    def snapshot(self, indices: list[int]) -> dict[int, bytes]:
        return {index: self.read(index) for index in indices}

    @staticmethod
    def _check_index(index: int):
        if not 0 <= index < PCR_COUNT:
            raise TpmError(f"PCR index out of range: {index}")


@dataclass
class TpmQuote:
    """A signed attestation of PCR state."""

    pcr_values: dict[int, bytes]
    nonce: bytes
    signature: bytes

    def quoted_bytes(self) -> bytes:
        body = {
            "pcrs": {str(i): v.hex() for i, v in sorted(self.pcr_values.items())},
            "nonce": self.nonce.hex(),
        }
        return json.dumps(body, sort_keys=True).encode("ascii")


class Tpm:
    """A TPM instance bound to one (simulated) machine."""

    def __init__(self, serial: str, key_bits: int = 1024,
                 attestation_seed: int | None = None):
        self.serial = serial
        self.pcr_bank = PcrBank()
        self.event_log: list[EventLogEntry] = []
        self._counters: dict[str, int] = {}
        self._nv_storage: dict[str, bytes] = {}
        # Attestation key: deterministic per serial so fleets are
        # reproducible.  ``attestation_seed`` overrides the per-serial
        # derivation so a large simulated fleet can share one (memoized)
        # keypair instead of paying a prime search per node — attestation
        # *identity* is then shared, which is fine for transfer/update
        # experiments but not for attestation ones.
        if attestation_seed is None:
            attestation_seed = int.from_bytes(
                sha256_bytes(serial.encode())[:8], "big")
        self._attestation_key = generate_keypair(
            key_bits, seed=attestation_seed)

    @staticmethod
    def attestation_key_spec(serial: str, key_bits: int = 1024,
                             attestation_seed: int | None = None
                             ) -> tuple[int, int]:
        """The ``(bits, seed)`` keypair-memo spec a node with this serial
        will request at boot — same derivation as ``__init__``, exposed so
        a fleet prewarm can run the prime searches on worker processes
        before the boots happen serially."""
        if attestation_seed is None:
            attestation_seed = int.from_bytes(
                sha256_bytes(serial.encode())[:8], "big")
        return (key_bits, attestation_seed)

    # -- measurement -----------------------------------------------------------

    @property
    def attestation_public_key(self) -> RsaPublicKey:
        return self._attestation_key.public_key

    def extend(self, index: int, digest: bytes, description: str = "") -> bytes:
        value = self.pcr_bank.extend(index, digest)
        self.event_log.append(EventLogEntry(index, digest, description))
        return value

    def measure(self, index: int, data: bytes, description: str = "") -> bytes:
        """Hash-and-extend convenience used by the boot chain."""
        return self.extend(index, sha256_bytes(data), description)

    def quote(self, indices: list[int], nonce: bytes) -> TpmQuote:
        """Sign the selected PCR values and a verifier-chosen nonce."""
        values = self.pcr_bank.snapshot(indices)
        unsigned = TpmQuote(pcr_values=values, nonce=nonce, signature=b"")
        signature = self._attestation_key.sign(unsigned.quoted_bytes())
        return TpmQuote(pcr_values=values, nonce=nonce, signature=signature)

    # -- monotonic counters ------------------------------------------------------

    def create_counter(self, name: str) -> int:
        if name in self._counters:
            raise TpmError(f"counter already exists: {name}")
        self._counters[name] = 0
        return 0

    def increment_counter(self, name: str) -> int:
        if name not in self._counters:
            raise TpmError(f"no such counter: {name}")
        self._counters[name] += 1
        return self._counters[name]

    def read_counter(self, name: str) -> int:
        if name not in self._counters:
            raise TpmError(f"no such counter: {name}")
        return self._counters[name]

    # -- NV storage ---------------------------------------------------------------

    def nv_write(self, name: str, data: bytes):
        self._nv_storage[name] = bytes(data)

    def nv_read(self, name: str) -> bytes:
        if name not in self._nv_storage:
            raise TpmError(f"no such NV index: {name}")
        return self._nv_storage[name]


def verify_quote(quote: TpmQuote, attestation_key: RsaPublicKey,
                 expected_nonce: bytes) -> dict[int, bytes]:
    """Verify a quote; returns the attested PCR values.

    Raises :class:`AttestationError` on nonce mismatch (replayed quote) or a
    bad signature (forged quote / wrong TPM).
    """
    if quote.nonce != expected_nonce:
        raise AttestationError(
            "quote nonce mismatch: expected "
            f"{expected_nonce.hex()[:16]}…, got {quote.nonce.hex()[:16]}…"
        )
    if not attestation_key.verify(quote.quoted_bytes(), quote.signature):
        raise AttestationError("quote signature verification failed")
    return dict(quote.pcr_values)
