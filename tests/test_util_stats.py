"""Tests for statistics helpers used by the bench harness."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    QuantileSketch,
    human_bytes,
    human_duration,
    percentile,
    summarize_latencies,
    trimmed_mean,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_of_even_series(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50), st.floats(0, 100))
    def test_bounded_by_min_max(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
    def test_monotone_in_q(self, data):
        qs = [0, 25, 50, 75, 100]
        values = [percentile(data, q) for q in qs]
        assert values == sorted(values)


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        assert trimmed_mean([1, 2, 3], trim=0.0) == 2.0

    def test_paper_style_20_percent(self):
        # 10 values, 20% trim drops 2 from each tail.
        data = [1000, 0, 5, 5, 5, 5, 5, 5, 0, 1000]
        assert trimmed_mean(data, trim=0.2) == 5.0

    def test_outliers_suppressed(self):
        data = [1.0] * 8 + [100.0, 200.0]
        assert trimmed_mean(data, trim=0.2) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_rejects_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_mean([1], trim=0.5)

    @given(st.lists(st.floats(0, 1e3), min_size=1, max_size=40))
    def test_within_data_range(self, data):
        value = trimmed_mean(data, trim=0.2)
        assert min(data) - 1e-9 <= value <= max(data) + 1e-9


class TestSummary:
    def test_five_number_ordering(self):
        summary = summarize_latencies(range(100))
        assert summary.p5 <= summary.p25 <= summary.p50 <= summary.p75 <= summary.p95
        assert summary.count == 100

    def test_row_keys(self):
        row = summarize_latencies([1.0, 2.0]).row()
        assert set(row) == {"count", "mean", "p5", "p25", "p50", "p75", "p95"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_latencies([])


class TestHumanFormat:
    def test_bytes_units(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KB"
        assert human_bytes(3 * 1024**3) == "3.0 GB"

    def test_duration_units(self):
        assert human_duration(0.000002).endswith("us")
        assert human_duration(0.036) == "36.0 ms"
        assert human_duration(2.2) == "2.20 s"
        assert human_duration(13 * 60) == "13.0 min"

    def test_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            human_duration(-1)


# -- quantile sketch -----------------------------------------------------------


def _assert_rank_bound(sketch, data, q, slack=0.0):
    """The sketch's error contract: the reported value's true rank is
    within ``2 / compression`` quantile units of ``q``."""
    from bisect import bisect_left, bisect_right

    ordered = sorted(data)
    n = len(ordered)
    estimate = sketch.quantile(q)
    lo = bisect_left(ordered, estimate) / n
    hi = bisect_right(ordered, estimate) / n
    eps = 2.0 / sketch.compression + slack
    assert lo - eps <= q / 100.0 <= hi + eps, (
        f"q={q}: estimate {estimate} covers ranks [{lo}, {hi}], "
        f"outside ±{eps}"
    )


class TestQuantileSketch:
    QS = (1, 5, 25, 50, 75, 95, 99)

    def test_exact_below_compression(self):
        sketch = QuantileSketch(compression=100)
        data = [float(i) for i in range(60)]
        sketch.extend(data)
        for q in self.QS:
            assert sketch.quantile(q) == pytest.approx(percentile(data, q))

    def test_min_max_exact(self):
        rng = random.Random(3)
        sketch = QuantileSketch()
        data = [rng.lognormvariate(0, 3) for _ in range(20_000)]
        sketch.extend(data)
        assert sketch.quantile(0) == min(data)
        assert sketch.quantile(100) == max(data)

    def test_rank_bound_uniform(self):
        rng = random.Random(7)
        data = [rng.random() for _ in range(50_000)]
        sketch = QuantileSketch()
        sketch.extend(data)
        for q in self.QS:
            _assert_rank_bound(sketch, data, q)

    def test_rank_bound_bimodal(self):
        # Adversarial: two tight clusters with a huge gap between them.
        rng = random.Random(11)
        data = [rng.gauss(0.0, 1e-6) for _ in range(25_000)]
        data += [rng.gauss(1e9, 1e-3) for _ in range(25_000)]
        rng.shuffle(data)
        sketch = QuantileSketch()
        sketch.extend(data)
        for q in self.QS:
            _assert_rank_bound(sketch, data, q)

    def test_constant_distribution(self):
        sketch = QuantileSketch()
        sketch.extend([4.25] * 10_000)
        for q in self.QS:
            assert sketch.quantile(q) == 4.25

    def test_subnormal_tail_no_underflow(self):
        # Mirrors percentile()'s equal-neighbour guard: interpolating
        # between subnormals must not round to 0.0.
        tiny = 5e-324
        sketch = QuantileSketch()
        sketch.extend([tiny] * 5_000 + [1.0] * 5_000)
        assert sketch.quantile(25) == tiny
        assert sketch.quantile(1) == tiny

    def test_streaming_order_within_bound(self):
        rng = random.Random(13)
        data = [rng.expovariate(1.0) for _ in range(30_000)]
        forward = QuantileSketch()
        forward.extend(data)
        backward = QuantileSketch()
        backward.extend(reversed(data))
        for q in self.QS:
            _assert_rank_bound(forward, data, q)
            _assert_rank_bound(backward, data, q)

    def test_merge_matches_concatenation_contract(self):
        rng = random.Random(17)
        a = [rng.gauss(0, 1) for _ in range(20_000)]
        b = [rng.gauss(5, 2) for _ in range(20_000)]
        sa, sb = QuantileSketch(), QuantileSketch()
        sa.extend(a)
        sb.extend(b)
        sa.merge(sb)
        assert sa.count == len(a) + len(b)
        for q in self.QS:
            _assert_rank_bound(sa, a + b, q)
        # other is unchanged
        assert sb.count == len(b)
        _assert_rank_bound(sb, b, 50)

    def test_merge_associativity_contract(self):
        # Merge is commutative/associative up to float round-off: every
        # association must obey the same rank-error contract.
        rng = random.Random(19)
        parts = [[rng.lognormvariate(0, 1.5) for _ in range(8_000)]
                 for _ in range(3)]
        whole = [x for part in parts for x in part]

        def sketch_of(values):
            s = QuantileSketch()
            s.extend(values)
            return s

        left = sketch_of(parts[0])
        left.merge(sketch_of(parts[1]))
        left.merge(sketch_of(parts[2]))
        right_inner = sketch_of(parts[1])
        right_inner.merge(sketch_of(parts[2]))
        right = sketch_of(parts[0])
        right.merge(right_inner)
        assert left.count == right.count == len(whole)
        for q in self.QS:
            _assert_rank_bound(left, whole, q)
            _assert_rank_bound(right, whole, q)
            # And the two associations agree with each other closely.
            assert left.quantile(q) == pytest.approx(
                right.quantile(q), rel=0.05, abs=1e-9)

    def test_weighted_add(self):
        sketch = QuantileSketch()
        sketch.add(1.0, weight=3.0)
        sketch.add(2.0)
        assert sketch.count == 4.0
        assert sketch.quantile(0) == 1.0
        assert sketch.quantile(100) == 2.0
        # Weighted mass pulls the median toward the heavy centroid.
        assert 1.0 <= sketch.quantile(50) < 1.5
        assert sketch.quantile(10) == 1.0

    def test_serialization_round_trip(self):
        rng = random.Random(23)
        sketch = QuantileSketch(compression=60)
        sketch.extend(rng.gauss(10, 4) for _ in range(5_000))
        payload = sketch.to_dict()
        import json
        restored = QuantileSketch.from_dict(json.loads(json.dumps(payload)))
        assert restored.count == sketch.count
        assert restored.compression == sketch.compression
        for q in (0, 1, 25, 50, 75, 99, 100):
            assert restored.quantile(q) == sketch.quantile(q)

    def test_empty_round_trip(self):
        restored = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert restored.count == 0.0
        with pytest.raises(ValueError):
            restored.quantile(50)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=10)
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(1.0, weight=0.0)
        with pytest.raises(ValueError):
            sketch.quantile(50)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(101)

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=400),
           st.sampled_from([0, 5, 25, 50, 75, 95, 100]))
    def test_bounded_by_min_max(self, data, q):
        sketch = QuantileSketch(compression=20)
        sketch.extend(data)
        value = sketch.quantile(q)
        assert min(data) <= value <= max(data)
