"""Multi-core host execution — worker-count sweep (EXPERIMENTS §12).

One multi-round trace (publish → mirror sync → refresh → fleet pull over
a multi-tenant deployment) replayed once per ``REPRO_WORKERS`` setting on
twin scenarios.  The worker pool only precomputes content-determined work
into the cost-honest memo tables, so every discrete outcome — published
index bytes, served package blobs, install counts, wire bytes, served
serials — must be identical at every worker count; the sweep asserts
that, then reports host wall-clock per worker count.

The speedup floor (>= 1.5x at 4 workers) is only asserted when the
machine actually exposes >= 4 CPUs to this process; on smaller boxes the
sweep still runs and the identity assertions still bite.  CI runs this
emitting ``BENCH_parallel_host.json``.
"""

import hashlib
import os
import time

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.util.hostpool import (
    autodetect_workers,
    clear_content_memos,
    reset_pool,
    set_workers,
)
from repro.util.stats import human_duration
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

ROUNDS = int(os.environ.get("REPRO_PARALLEL_ROUNDS", "6"))
TENANTS = int(os.environ.get("REPRO_PARALLEL_TENANTS", "2"))
CLIENTS = int(os.environ.get("REPRO_PARALLEL_CLIENTS", "8"))
PACKAGES = 12
FILES_PER_PACKAGE = 12
WORKER_SWEEP = (0, 1, 2, 4)

#: The headline floor, asserted only when >= 4 CPUs are available.
SPEEDUP_FLOOR = 1.5


def _population(count=PACKAGES, files=FILES_PER_PACKAGE, reps=4000):
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}",
                                  bytes([i, j]) * 400)
                      for j in range(files - 1)]
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=pkg_files,
        ))
    return packages


def _replay_once():
    scenario = build_multi_tenant_scenario(
        tenants=TENANTS, overlap=0.5, packages=_population())
    multi_tenant_refresh(scenario)
    # Wide simulated margins: charged costs are wall-measured, so a pull
    # scheduled too close to a refresh could land on serial N or N+1
    # depending on host jitter.  Simulated seconds are free; keep every
    # event far from any availability boundary so the only run-to-run
    # variable is host time, never a discrete landing.
    trace = generate_trace(rounds=ROUNDS, interval=30.0,
                           publish_fraction=0.3, sync_lag=2.0,
                           refresh_lag=6.0, pull_lag=20.0, seed=12)
    report = replay_trace(scenario, trace, clients=CLIENTS,
                          mode="interleaved")
    return scenario, report


def _fingerprint(scenario, report) -> str:
    """SHA-256 over every discrete outcome a worker count could perturb."""
    h = hashlib.sha256()
    for repo_id in scenario.tenants:
        h.update(scenario.tsr.get_index_bytes(repo_id))
        for publication in scenario.tsr.publications(repo_id):
            h.update(str(publication.serial).encode())
            h.update(publication.index_bytes)
            for name in sorted(publication.blobs):
                h.update(name.encode())
                h.update(publication.blobs[name])
    h.update(str(report.installs).encode())
    h.update(str(report.client_wire_bytes).encode())
    h.update(str(report.publishes).encode())
    for name in sorted(report.timelines):
        serials = [s for _, s in report.timelines[name].transitions]
        h.update(f"{name}:{serials}".encode())
    return h.hexdigest()


def test_parallel_host_sweep(benchmark, maybe_profile):
    available = autodetect_workers()
    host_times = {}
    fingerprints = {}

    def sweep():
        for workers in WORKER_SWEEP:
            # Each worker count starts from cold content memos; otherwise
            # the first run would warm every later one and the sweep
            # would measure cache hits, not the pool.
            clear_content_memos()
            pool = set_workers(workers)
            begin = time.perf_counter()
            scenario, report = _replay_once()
            host_times[workers] = time.perf_counter() - begin
            fingerprints[workers] = _fingerprint(scenario, report)
            if pool is not None:
                assert not pool.broken, \
                    f"pool broke at {workers} workers (inline fallback hit)"
        return fingerprints

    try:
        benchmark.pedantic(
            maybe_profile("parallel host sweep (workers 0/1/2/4)", sweep),
            rounds=1, iterations=1)
    finally:
        clear_content_memos()
        reset_pool()  # back to the REPRO_WORKERS environment setting

    benchmark.extra_info["cpus_available"] = available
    for workers, wall in host_times.items():
        benchmark.extra_info[f"host_time_{workers}w_s"] = round(wall, 3)
    speedup4 = host_times[0] / host_times[4]
    benchmark.extra_info["speedup_4w"] = round(speedup4, 2)

    table = PaperTable(
        experiment="Parallel host sweep",
        title=f"{ROUNDS}-round / {TENANTS}-tenant / {CLIENTS}-client "
              "replay: host wall-clock vs worker count",
        columns=["workers", "host time", "speedup vs serial", "outcome"],
    )
    for workers in WORKER_SWEEP:
        table.add_row(
            workers,
            human_duration(host_times[workers]),
            f"{host_times[0] / host_times[workers]:.2f}x",
            "identical" if fingerprints[workers] == fingerprints[0]
            else "DIVERGED",
        )
    table.note(f"{available} CPU(s) visible to this process; outputs "
               "fingerprint signed indexes, publication blobs, installs, "
               "wire bytes, and served serials")
    record_table(table)

    # The invariant that makes the pool safe to ship: every worker count
    # produces bit-identical discrete outcomes.
    for workers in WORKER_SWEEP[1:]:
        assert fingerprints[workers] == fingerprints[0], (
            f"outputs diverged at {workers} workers"
        )
    # The perf floor only means something with real cores to spread over.
    if available >= 4:
        assert speedup4 >= SPEEDUP_FLOOR, (
            f"4-worker speedup only {speedup4:.2f}x "
            f"(serial {host_times[0]:.2f}s, 4w {host_times[4]:.2f}s)"
        )
