"""The SGX-capable CPU and the (Intel-like) attestation service.

A :class:`SgxCpu` owns two secrets a real CPU fuses at manufacturing time:
the root sealing key (never leaves the die; derives per-enclave sealing
keys) and the attestation key certified by the manufacturer.  The
:class:`AttestationService` plays the role of Intel's provisioning /
attestation infrastructure: verifiers ask it whether a quote chains up to a
genuine CPU.
"""

from __future__ import annotations

from repro.crypto.hashes import hmac_sha256, sha256_bytes
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.util.errors import AttestationError


class AttestationService:
    """Knows which CPU attestation keys belong to genuine hardware."""

    def __init__(self):
        self._genuine: dict[str, RsaPublicKey] = {}

    def register_cpu(self, cpu_id: str, attestation_key: RsaPublicKey):
        self._genuine[cpu_id] = attestation_key

    def attestation_key_for(self, cpu_id: str) -> RsaPublicKey:
        if cpu_id not in self._genuine:
            raise AttestationError(f"CPU {cpu_id!r} is not a genuine SGX platform")
        return self._genuine[cpu_id]


class SgxCpu:
    """An SGX-capable processor."""

    def __init__(self, cpu_id: str, attestation_service: AttestationService,
                 key_bits: int = 1024):
        self.cpu_id = cpu_id
        seed = int.from_bytes(sha256_bytes(b"sgx-cpu:" + cpu_id.encode())[:8], "big")
        self._root_sealing_key = sha256_bytes(b"fused-seal-key:" + cpu_id.encode())
        self._attestation_key: RsaPrivateKey = generate_keypair(key_bits, seed=seed)
        attestation_service.register_cpu(cpu_id, self._attestation_key.public_key)

    def derive_sealing_key(self, mrenclave: bytes) -> bytes:
        """MRENCLAVE-bound sealing key: same enclave on same CPU only."""
        return hmac_sha256(self._root_sealing_key, b"MRENCLAVE:" + mrenclave)

    def sign_quote(self, report: bytes) -> bytes:
        """The quoting machinery signs an enclave report (EPID/DCAP stand-in)."""
        return self._attestation_key.sign(report)
