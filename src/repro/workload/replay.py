"""Multi-round trace replay: publish → refresh → fleet pull as one plan.

The paper evaluates TSR refresh latency for a *single* update round; its
freshness story — clients keep running stale measurements until the next
signed index lands — is only sketched.  This module replays a timestamped
:class:`~repro.workload.generator.Trace` (upstream publishes, mirror syncs
with lag or freeze, TSR refreshes, client fleet pulls) over one long-lived
deployment and measures what the paper leaves open: per-client
**staleness** (time running an index older than the newest upstream
publish) and end-to-end **update availability** latency, over dozens of
rounds.

Three composition modes:

* ``mode="serial"`` — today's composition: every event runs to completion
  before the next may start (``multi_tenant_refresh()`` then a fleet
  fan-out, repeated), with a barrier carrying the finish frontier across
  events.  Rounds arriving faster than they drain pile up.
* ``mode="interleaved"`` — the plan-wide timeline: *every* transfer of
  the whole trace — quorum index reads, mirror package downloads, and
  all clients' pull fetches — is a stream of **one**
  :class:`~repro.simnet.schedule.ParallelTransferSchedule` whose shared
  capacity models the TSR machine's NIC, refresh rounds extend one
  resumable :class:`~repro.core.orchestrator.RefreshPlanState` (shared
  mirror channels, enclave frontier, cache-shard frontiers, in-flight
  transfer table), and fleet waves are pinned at their trace instants via
  :class:`~repro.simnet.network.PlanFetchSession`.  Round k+1's quorum
  widens while round k's fleet pulls still drain the uplink.
* ``mode="streaming"`` — the interleaved timeline at O(active) memory:
  the schedule runs as a :class:`~repro.simnet.schedule.ScheduleStream`
  whose frontier advances to each event's instant, completions are
  drained and folded into online metric aggregates the moment they
  settle (no per-client transition lists, no per-round report list, no
  plan timeline), the scheduler retires drained download keys, and —
  when the trace rotates pull waves over a large fleet — each client's
  node is torn down once its final wave drains.  Staleness uses a lazy
  telescoping fold (per client: current serial + last landing instant;
  each landing charges ``max(0, t' - max(t_last, P(s)))`` where ``P(s)``
  is the first publish instant with a serial newer than ``s``), which
  telescopes to exactly :func:`staleness_seconds`; availability uses a
  per-client pointer into the publish list.  Percentiles come from
  mergeable :class:`~repro.util.stats.QuantileSketch` aggregates plus
  per-window scalar curves instead of an end-of-run pass over all
  samples.  Timings are identical to ``interleaved`` — the stream
  replays the very same solver on the very same enqueues — so installs,
  served serials, and published bytes match bit-for-bit; only the
  metric *representation* changes (sums exact up to float re-association,
  percentiles within the sketch's rank-error bound).

Causality across in-flight rounds is kept by *versioned publications*
(:meth:`~repro.core.service.TrustedSoftwareRepository.record_publication`):
a refresh round publishes its signed index and sanitized blobs at the
round's completion offset, and every pull wave is time-stamped
(``TsrRepositoryClient.as_of``) so a client pulling at plan time T sees
the newest publication that had **finished** by T — never the output of a
refresh still in flight, even though the Python call that computed it has
already returned.  One deployment carries all state across rounds: the
content-addressed cache dedupes incremental downloads, eviction pressure
accumulates (LRU vs scan-resistant LRU-2 — ``cache_policy``), and the
enclave's catalog grows monotonically.

Verdict/byte fidelity is pinned by the differential suite
(``tests/test_trace_replay.py``): a one-tenant, one-round trace produces
byte-identical signed indexes and served packages to the literal
``multi_tenant_refresh(); fleet_refresh()`` composition.  The replay
bench (``benchmarks/bench_trace_replay.py``) measures the serial-vs-
interleaved ablation and the staleness/availability curves
(EXPERIMENTS.md §7).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.core.orchestrator import (
    MultiTenantRefreshReport,
    RefreshOrchestrator,
    RefreshPlanState,
)
from repro.core.pipeline import MirrorDownloadScheduler
from repro.core.replica import check_replica_freshness
from repro.simnet.network import PlanFetchSession
from repro.simnet.schedule import ParallelTransferSchedule
from repro.util.errors import PolicyError, RollbackError
from repro.util.stats import QuantileSketch, percentile
from repro.workload.generator import Trace, TraceEvent, evolve_packages
from repro.workload.scenario import ClientFleet, Scenario, run_pull_wave

REPLAY_MODES = ("interleaved", "serial", "streaming")


# -- staleness / availability metrics (pure, unit-testable) -------------------


def staleness_seconds(publishes: list[tuple[float, int]],
                      transitions: list[tuple[float, int]],
                      horizon: float) -> float:
    """Seconds a client ran an index older than the newest publish.

    ``publishes`` are upstream ``(time, serial)`` bumps; ``transitions``
    are the client's ``(time, serial)`` index landings.  Both must be
    time-sorted with nondecreasing serials.  Integration starts at the
    client's *first* transition (before that the client does not exist
    for the experiment) and ends at ``horizon``; the client is stale
    whenever its current serial is older than the newest serial published
    so far.
    """
    if not transitions:
        return 0.0
    start = transitions[0][0]
    events: list[tuple[float, int, str, int]] = []
    # Tie-break at equal instants: apply the publish first (a client
    # landing an index at the very moment a newer serial publishes is
    # already stale), then the client transition.
    for at, serial in publishes:
        events.append((at, 0, "pub", serial))
    for at, serial in transitions:
        events.append((at, 1, "client", serial))
    events.sort(key=lambda e: (e[0], e[1]))

    newest = 0
    current: int | None = None
    stale_since: float | None = None
    total = 0.0
    for at, _, kind, serial in events:
        if at > horizon:
            break
        if kind == "pub":
            newest = max(newest, serial)
            if (current is not None and current < newest
                    and stale_since is None):
                stale_since = at
        else:
            current = serial
            if stale_since is not None and current >= newest:
                total += at - stale_since
                stale_since = None
            elif (stale_since is None and current < newest
                    and at >= start):
                stale_since = at
    if stale_since is not None:
        total += max(0.0, horizon - max(stale_since, start))
    return total


def availability_latencies(publishes: list[tuple[float, int]],
                           transitions: list[tuple[float, int]],
                           ) -> dict[int, float | None]:
    """Per publish serial: how long until this client caught up.

    Returns ``serial -> seconds`` from the publish instant to the
    client's first transition with an index at least that new, or
    ``None`` when the client never caught up within the trace.
    """
    latencies: dict[int, float | None] = {}
    for published_at, serial in publishes:
        caught = next((at for at, got in transitions
                       if got >= serial and at >= published_at), None)
        latencies[serial] = (caught - published_at
                             if caught is not None else None)
    return latencies


# -- replay data model --------------------------------------------------------


@dataclass
class ClientTimeline:
    """One client's view of the trace: index landings + derived metrics."""

    name: str
    repo_id: str
    #: (plan time the signed index was authenticated, its serial).
    transitions: list[tuple[float, int]] = field(default_factory=list)
    staleness: float = 0.0
    #: publish serial -> catch-up latency (None: never caught up).
    availability: dict[int, float | None] = field(default_factory=dict)


@dataclass
class StreamingReplaySummary:
    """Online-folded metrics of a ``mode="streaming"`` replay.

    Everything here is accumulated as completions drain — per-client
    state is three scalars and a publish pointer, fleet-wide percentiles
    live in :class:`~repro.util.stats.QuantileSketch` aggregates, and
    time-resolved shapes are per-window scalar folds (window ``i``
    covers ``[i * window_seconds, (i+1) * window_seconds)``).
    """

    #: Sum / max over the fleet of per-client staleness seconds.
    staleness_sum: float
    staleness_max: float
    #: Distribution of per-client staleness totals (never-pulled clients
    #: included as zeros, so ``count`` equals the fleet size).
    staleness_sketch: QuantileSketch
    #: Catch-up latency fold over every caught-up (publish, client) pair.
    availability_sum: float
    availability_count: int
    availability_max: float
    availability_sketch: QuantileSketch
    window_seconds: float
    #: Fleet stale-seconds charged to each window (interval overlap).
    window_stale_seconds: list[float]
    #: Per window of the publish instant: [samples, sum, max] catch-up.
    window_availability: list[list[float]]
    #: Folded counters over the dropped per-round refresh reports.
    refresh_totals: dict
    #: How many fleet nodes were ever booted (lazy fleet introspection).
    clients_booted: int
    #: Peaks of the stream's live footprint, sampled at every drain.
    peak_live_channels: int
    peak_pending_items: int
    final_stream_stats: dict


@dataclass
class TraceReplayReport:
    """Everything one trace replay measured."""

    mode: str
    rounds: int
    clients: int
    #: Plan time of the last activity (transfers, enclave, disk).
    wall_elapsed: float
    #: Observation horizon staleness integrates over.
    horizon: float
    installs: int
    failed_pulls: int
    failed_installs: int
    #: Upstream (time, serial) bumps, the trace's ground truth.
    publishes: list[tuple[float, int]]
    refresh_rounds: list[MultiTenantRefreshReport]
    timelines: dict[str, ClientTimeline]
    #: Whether the fleet pulled via the delta-update path.
    delta_updates: bool = False
    #: Wire bytes the fleet fetched, per pull wave (the TSR-uplink cost
    #: of serving the fleet; refresh traffic is not included).
    pull_wire_bytes: list[int] = field(default_factory=list)
    #: Fleet-wide delta accounting (:meth:`DeltaStats.as_dict`; all zeros
    #: when ``delta_updates`` is off).
    delta_stats: dict = field(default_factory=dict)
    #: ``mode="streaming"`` only: the online-folded metric aggregates
    #: (``timelines`` and ``refresh_rounds`` are then empty — per-client
    #: and per-round records were retired as they drained).
    streaming: StreamingReplaySummary | None = None
    #: Per-pull completion latency (wave start → the client's last fetch
    #: settling), folded across every scheduled wave in every mode.
    pull_latency: QuantileSketch | None = None
    #: Edge-replica tier accounting (zero without replicas).
    replicas: int = 0
    #: Pull waves in which a replica failed its freshness check and lost
    #: the wave's traffic to the primary (counted per replica per wave).
    replica_refusals: int = 0
    #: Wire bytes the replicas pulled off the primary's uplink to sync.
    replica_sync_bytes: int = 0

    def pull_latency_quantile(self, q: float) -> float:
        """``q``-th percentile of per-client pull completion latency."""
        if self.pull_latency is None:
            return 0.0
        return self.pull_latency.quantile(q)

    @property
    def staleness_per_client(self) -> dict[str, float]:
        return {name: t.staleness for name, t in self.timelines.items()}

    @property
    def staleness_mean(self) -> float:
        if self.streaming is not None:
            return (self.streaming.staleness_sum / self.clients
                    if self.clients else 0.0)
        if not self.timelines:
            return 0.0
        return sum(t.staleness for t in self.timelines.values()) \
            / len(self.timelines)

    @property
    def staleness_max(self) -> float:
        if self.streaming is not None:
            return self.streaming.staleness_max
        return max((t.staleness for t in self.timelines.values()),
                   default=0.0)

    @property
    def availability_mean(self) -> float:
        """Mean catch-up latency over every (publish, client) pair."""
        if self.streaming is not None:
            folded = self.streaming
            return (folded.availability_sum / folded.availability_count
                    if folded.availability_count else 0.0)
        samples = [
            latency
            for timeline in self.timelines.values()
            for latency in timeline.availability.values()
            if latency is not None
        ]
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def availability_max(self) -> float:
        if self.streaming is not None:
            return self.streaming.availability_max
        return max((latency
                    for timeline in self.timelines.values()
                    for latency in timeline.availability.values()
                    if latency is not None), default=0.0)

    def staleness_quantile(self, q: float) -> float:
        """``q``-th percentile of per-client staleness totals.

        Exact over the timelines in the materialized modes; within the
        sketch's rank-error bound in streaming mode.
        """
        if self.streaming is not None:
            return self.streaming.staleness_sketch.quantile(q)
        values = [t.staleness for t in self.timelines.values()]
        return percentile(values, q) if values else 0.0

    def availability_quantile(self, q: float) -> float:
        """``q``-th percentile of catch-up latency samples."""
        if self.streaming is not None:
            return self.streaming.availability_sketch.quantile(q)
        samples = [
            latency
            for timeline in self.timelines.values()
            for latency in timeline.availability.values()
            if latency is not None
        ]
        return percentile(samples, q) if samples else 0.0

    # Fleet wire-byte metrics (the delta-update ablation, EXPERIMENTS §8).

    @property
    def client_wire_bytes(self) -> int:
        """Total bytes the fleet pulled off the TSR uplink."""
        return sum(self.pull_wire_bytes)

    @property
    def bytes_per_client_per_round(self) -> float:
        """Mean uplink bytes one client costs per pull wave."""
        if not self.pull_wire_bytes or not self.clients:
            return 0.0
        return self.client_wire_bytes \
            / (self.clients * len(self.pull_wire_bytes))

    def steady_state_bytes_per_client_per_round(self,
                                                skip_waves: int = 1) -> float:
        """Same metric excluding the first ``skip_waves`` warm-up waves
        (clients hold no bases yet, so early waves pull full either way)."""
        tail = self.pull_wire_bytes[skip_waves:]
        if not tail or not self.clients:
            return 0.0
        return sum(tail) / (self.clients * len(tail))

    # Aggregates over the refresh rounds (cache behaviour across rounds).

    @property
    def deduped_downloads(self) -> int:
        if self.streaming is not None:
            return self.streaming.refresh_totals["downloads_deduped"]
        return sum(r.downloads_deduped for r in self.refresh_rounds)

    @property
    def evicted_redownloads(self) -> int:
        if self.streaming is not None:
            return self.streaming.refresh_totals["evicted_redownloads"]
        return sum(r.evicted_redownloads for r in self.refresh_rounds)

    @property
    def prescans(self) -> int:
        if self.streaming is not None:
            return self.streaming.refresh_totals["prescans"]
        return sum(r.prescans for r in self.refresh_rounds)

    @property
    def downloaded_bytes(self) -> int:
        if self.streaming is not None:
            return self.streaming.refresh_totals["downloaded_bytes"]
        return sum(r.downloaded_bytes for r in self.refresh_rounds)


@dataclass
class _WaveRecord:
    """One fleet wave awaiting its final transfer timings."""

    started_at: float
    #: client name -> (schedule key of the index fetch, serial served).
    index_marks: dict[str, tuple[object, int]]
    #: client name -> schedule key of the wave's last fetch.
    last_keys: dict[str, object]
    schedule: ParallelTransferSchedule


# -- the engine ---------------------------------------------------------------


def publish_event(scenario: Scenario, event: TraceEvent,
                  trace_seed: int) -> list[str]:
    """Apply one ``publish`` event: evolve + publish an update batch.

    The batch is sampled by an RNG derived *only* from the trace seed and
    the event seed — never from the replay's shared stream — so both
    replay modes (and any external caller reproducing the trace, e.g. the
    differential suite) publish byte-identical releases.
    """
    rng = random.Random(f"trace-publish:{trace_seed}:{event.seed}")
    batch = evolve_packages(scenario.population, event.fraction, rng)
    scenario.origin.publish_many([(package, None) for package in batch])
    for package in batch:
        scenario.population[package.name] = package
    return [package.name for package in batch]


class _HostLookahead:
    """Pool-side lookahead over the trace's event stream.

    Every event's content-determined work is known from the trace before
    the serial timeline executes it: a publish batch is a pure function
    of (population, trace seed, event seed), a pull wave serves the
    current publications, a refresh sanitizes blobs that were published
    earlier.  With a worker pool configured this helper precomputes that
    work and warms the content memos the serial path then splices —
    host time drops, while outcomes, wire bytes, and simulated
    timestamps are pinned byte-identical by construction (memos install
    value + originally measured cost, first install wins).  Without a
    pool every hook is a no-op and the replay byte-matches the pre-pool
    code path.
    """

    def __init__(self, scenario: Scenario, tenants: list[str],
                 trace: Trace, delta_updates: bool):
        from repro.util.hostpool import get_pool
        self._pool = get_pool()
        self._scenario = scenario
        self._tenants = list(tenants)
        self._trace = trace
        self._delta = delta_updates
        #: repo_id -> host-visible trusted signer keys (policy is public).
        self._signers: dict[str, list] = {}

    @property
    def active(self) -> bool:
        return self._pool is not None and not self._pool.broken

    def _signer_keys(self, repo_id: str) -> list:
        keys = self._signers.get(repo_id)
        if keys is None:
            try:
                keys = list(self._scenario.tsr.repo_config(repo_id)
                            .policy.signers_keys)
            except Exception:
                keys = []
            self._signers[repo_id] = keys
        return keys

    def before_publish(self, event: TraceEvent) -> None:
        """Pre-build the exact batch the publish event is about to build
        (twin RNG; :func:`evolve_packages` is pure), warming the deflate
        and sign memos the serial ``publish_many`` splices from."""
        if not self.active:
            return
        rng = random.Random(
            f"trace-publish:{self._trace.seed}:{event.seed}")
        batch = evolve_packages(self._scenario.population, event.fraction,
                                rng)
        self._scenario.origin.prewarm_publish(batch, pool=self._pool)

    def after_publish(self, names: list[str]) -> None:
        """Fire async analysis lookahead for the just-published blobs —
        the next refresh round's sanitize work.  Results are collected by
        the enclave's prewarm phase (or discarded at pool shutdown); the
        signing-key half cannot run here because private tenant keys are
        enclave-internal."""
        if not self.active:
            return
        from repro.core.sanitizer import sanitize_prefetch
        origin = self._scenario.origin
        for repo_id in self._tenants:
            signers = self._signer_keys(repo_id)
            if not signers:
                continue
            for name in names:
                sanitize_prefetch(origin.package_blob(name), signers,
                                  None, self._pool)

    def before_pull(self, fleet: ClientFleet, indices=None) -> None:
        """Warm everything a pull wave hits: the wave's pending boots'
        attestation prime searches, and parse/verify (plus delta
        chunking) of the publications about to be served."""
        if not self.active:
            return
        from repro.osim.pkgmgr import prewarm_pull_wave
        fleet.prewarm_boots(indices)
        scenario = self._scenario
        trusted = {
            repo_id: [scenario.tenant_keys.get(repo_id,
                                               scenario.tsr_public_key)]
            for repo_id in self._tenants
        }
        prewarm_pull_wave(scenario.tsr, self._tenants, trusted,
                          pool=self._pool, delta=self._delta)


class TraceReplay:
    """Replays one :class:`Trace` against one deployment.

    The engine owns the plan timeline: the scenario clock is advanced
    exactly once, at the end, by the replay's wall-clock.  See the module
    docstring for the two composition modes.
    """

    def __init__(self, scenario: Scenario, trace: Trace, clients: int = 8,
                 mode: str = "interleaved",
                 client_downlink=None,
                 max_streams: int | None = None,
                 tenants: list[str] | None = None,
                 link_bandwidth: float | None = None,
                 delta_updates: bool = False,
                 window_seconds: float | None = None,
                 shared_tpm_seed: int | None = None,
                 replicas=None):
        if mode not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay mode {mode!r} (expected {REPLAY_MODES})"
            )
        if not scenario.population:
            raise ValueError("trace replay needs a published population")
        self._scenario = scenario
        self._trace = trace
        self._mode = mode
        self._max_streams = max_streams
        self._tenants = list(tenants or scenario.tenants)
        #: The shared-NIC capacity every transfer of the plan contends
        #: for (half-duplex model: refresh downloads and client serving
        #: share the TSR machine's one NIC in both modes).
        self._capacity = (
            link_bandwidth if link_bandwidth is not None
            else scenario.network.host(scenario.tsr.hostname).bandwidth
        )
        self._interleaved = mode == "interleaved"
        self._streaming = mode == "streaming"
        self._clients = clients
        self._client_downlink = client_downlink
        self._delta_updates = delta_updates
        self._window_seconds = window_seconds
        #: Forwarded to :class:`ClientFleet`: one memoized attestation
        #: keypair for the whole fleet instead of a prime search per
        #: client boot.  Replay metrics never read the attestation key,
        #: so both modes produce identical reports either way — set it
        #: whenever the fleet is large.
        self._shared_tpm_seed = shared_tpm_seed
        #: Edge-replica serving tier (:class:`repro.core.replica.ReplicaTSR`
        #: instances, already registered on the scenario network).  The
        #: replay drives their sync loop — on every publication plus a
        #: cadence heartbeat before pull waves — and runs the freshness
        #: check that routes clients away from stale/frozen replicas.
        self._replicas = list(replicas) if replicas else []
        self._replica_refusals = 0

    # -- replica tier plumbing -------------------------------------------------

    def _link_replicas(self, schedule: ParallelTransferSchedule):
        """Declare one independent uplink pool per replica host on the
        plan schedule (must run before a stream is opened)."""
        network = self._scenario.network
        for replica in self._replicas:
            schedule.add_link(replica.hostname,
                              network.host(replica.hostname).bandwidth)

    def _sync_replicas(self, at: float, repo_ids=None, schedule=None):
        for replica in self._replicas:
            replica.sync_from_primary(at, repo_ids=repo_ids,
                                      schedule=schedule)

    def _heartbeat_replicas(self, at: float, schedule=None):
        """Cadence sync ahead of a pull wave: a healthy replica re-syncs
        whenever its last sync is at least one cadence old, so its lag at
        wave time never exceeds its cadence (< the staleness bound).  A
        frozen replica ignores this and drifts into refusal."""
        for replica in self._replicas:
            if at - replica.synced_through >= replica.sync_cadence:
                replica.sync_from_primary(at, schedule=schedule)

    def _freshness_refusals(self, as_of: float) -> set[str]:
        """Quorum-check every replica's served index for this wave."""
        refused: set[str] = set()
        scenario = self._scenario
        for replica in self._replicas:
            for repo_id in self._tenants:
                if scenario.tsr.publication_at(repo_id, as_of) is None:
                    continue  # nothing published yet: nothing to refuse
                key = scenario.tenant_keys.get(repo_id,
                                               scenario.tsr_public_key)
                try:
                    check_replica_freshness(replica, repo_id, as_of, [key])
                except RollbackError:
                    refused.add(replica.hostname)
                    replica.refusals += 1
                    self._replica_refusals += 1
                    break
        return refused

    def _new_round_state(self) -> tuple[ParallelTransferSchedule,
                                        RefreshPlanState]:
        schedule = ParallelTransferSchedule(
            downlink_bandwidth=self._capacity)
        plan = RefreshPlanState(scheduler=MirrorDownloadScheduler(
            self._scenario.tsr, schedule=schedule,
            channel_key=lambda hostname: ("dl", hostname)))
        return schedule, plan

    def run(self) -> TraceReplayReport:
        if self._streaming:
            return self._run_streaming()
        scenario = self._scenario
        trace = self._trace
        tsr = scenario.tsr

        if self._interleaved:
            schedule, plan = self._new_round_state()
            self._link_replicas(schedule)
            # One enclave memo window spans the whole plan: steady-state
            # rounds replay unchanged blobs' analyses at their recorded
            # costs instead of re-parsing them (host time only — every
            # simulated duration and per-round counter is unchanged).
            plan.persistent_enclave_memo = True
            session = PlanFetchSession(scenario.network, schedule)
        else:
            schedule = plan = session = None
        fleet = ClientFleet(
            scenario, self._clients, name_prefix=f"replay-{trace.seed}",
            session=session, client_downlink=self._client_downlink,
            tenants=self._tenants, delta_updates=self._delta_updates,
            shared_tpm_seed=self._shared_tpm_seed,
            replicas=self._replicas,
        )

        #: Baseline: the pre-trace population is "publish zero".
        publishes: list[tuple[float, int]] = [(0.0, scenario.origin.serial)]
        for repo_id in self._tenants:
            try:
                tsr.get_index_bytes(repo_id)
            except PolicyError:
                continue  # tenant not refreshed before the trace
            tsr.record_publication(repo_id, 0.0)
        self._sync_replicas(0.0, schedule=schedule)

        refresh_rounds: list[MultiTenantRefreshReport] = []
        waves: list[_WaveRecord] = []
        pull_wire_bytes: list[int] = []
        installs = 0
        failed_pulls = 0
        failed_installs = 0
        frontier = 0.0      # serial-mode barrier; last finish in both modes
        lookahead = _HostLookahead(scenario, self._tenants, trace,
                                   self._delta_updates)

        try:
            for event in trace.ordered():
                start = (event.at if self._interleaved
                         else max(event.at, frontier))
                if event.kind == "publish":
                    lookahead.before_publish(event)
                    published = publish_event(scenario, event, trace.seed)
                    publishes.append((event.at, scenario.origin.serial))
                    lookahead.after_publish(published)
                elif event.kind == "mirror_sync":
                    targets = (event.mirrors if event.mirrors is not None
                               else list(scenario.mirrors))
                    for name in targets:
                        scenario.mirrors[name].sync()
                elif event.kind == "refresh":
                    repo_ids = list(event.tenants or self._tenants)
                    if self._interleaved:
                        round_plan = plan
                    else:
                        _, round_plan = self._new_round_state()
                    report = RefreshOrchestrator(
                        tsr, repo_ids, max_streams=self._max_streams,
                        origin=start, plan_state=round_plan,
                        advance_clock=False,
                    ).run()
                    refresh_rounds.append(report)
                    for repo_id in repo_ids:
                        tsr.record_publication(repo_id, report.finished_at)
                    self._sync_replicas(report.finished_at, repo_ids,
                                        schedule=schedule)
                    frontier = max(frontier, report.finished_at)
                elif event.kind == "fleet_pull":
                    lookahead.before_pull(fleet, event.clients)
                    clients = (fleet.clients if event.clients is None
                               else fleet.subset(event.clients))
                    if self._interleaved:
                        wave_schedule, wave_session = schedule, session
                    else:
                        wave_schedule = ParallelTransferSchedule(
                            downlink_bandwidth=self._capacity)
                        self._link_replicas(wave_schedule)
                        wave_session = PlanFetchSession(scenario.network,
                                                        wave_schedule)
                        fleet.use_session(wave_session)
                    fleet.set_as_of(start)
                    if self._replicas:
                        self._heartbeat_replicas(
                            start, schedule=wave_schedule)
                        fleet.set_replica_refusals(
                            self._freshness_refusals(start))
                    wave_session.begin_wave(start)
                    # Event-local RNG (like publish batches): a wave's
                    # install choices depend on the trace seed and the
                    # event's own seed, never on ambient state or other
                    # waves' draws.
                    wave_rng = random.Random(
                        f"trace-pull:{trace.seed}:{event.seed}:{event.at}")
                    wire_before = wave_session.total_wire_bytes
                    outcome = run_pull_wave(
                        clients, wave_rng, event.installs_per_client,
                        plan_session=wave_session, tolerate_failures=True,
                    )
                    pull_wire_bytes.append(
                        wave_session.total_wire_bytes - wire_before)
                    installs += outcome.installs
                    failed_pulls += outcome.failed_pulls
                    failed_installs += outcome.failed_installs
                    record = _WaveRecord(
                        started_at=start,
                        index_marks={
                            name: (outcome.index_keys.get(name), serial)
                            for name, serial in outcome.served_serial.items()
                        },
                        last_keys=dict(outcome.last_keys),
                        schedule=wave_schedule,
                    )
                    waves.append(record)
                    if not self._interleaved:
                        timings = wave_schedule.solve()
                        wave_end = max(
                            (timings[key].finish
                             for key in record.last_keys.values()
                             if key is not None),
                            default=start,
                        )
                        frontier = max(frontier, wave_end, start)
        finally:
            if self._interleaved and refresh_rounds:
                # The rounds kept one persistent memo window open; close
                # it so later standalone refreshes start cold.
                tsr._enclave.ecall("end_shared_refresh")

        # Resolve the plan: one final solve fixes every wave's timings
        # (monotonicity means mid-flight pins stayed valid lower bounds).
        timelines = {
            client.name: ClientTimeline(name=client.name,
                                        repo_id=client.repo_id)
            for client in fleet.clients
        }
        wall = frontier
        pull_latency = QuantileSketch()
        solved: dict[int, dict] = {}
        for record in waves:
            key_id = id(record.schedule)
            if key_id not in solved:
                solved[key_id] = record.schedule.solve()
            timings = solved[key_id]
            for name, (index_key, serial) in record.index_marks.items():
                landed = (timings[index_key].finish
                          if index_key is not None else record.started_at)
                timelines[name].transitions.append((landed, serial))
            for key in record.last_keys.values():
                if key is not None:
                    finish = timings[key].finish
                    wall = max(wall, finish)
                    if finish >= record.started_at:
                        # Keys older than the wave (a failed pull echoing
                        # its previous fetch) are not this wave's latency.
                        pull_latency.add(finish - record.started_at)
        if self._interleaved and schedule is not None:
            timings = schedule.solve()
            wall = max([wall, plan.enclave_free,
                        *plan.shard_free.values(),
                        *(t.finish for t in timings.values())])

        horizon = max(trace.horizon, wall)
        for timeline in timelines.values():
            timeline.transitions.sort()
            timeline.staleness = staleness_seconds(
                publishes, timeline.transitions, horizon)
            timeline.availability = availability_latencies(
                publishes, timeline.transitions)

        scenario.clock.advance(wall)
        return TraceReplayReport(
            mode=self._mode,
            rounds=len(refresh_rounds),
            clients=fleet.size,
            wall_elapsed=wall,
            horizon=horizon,
            installs=installs,
            failed_pulls=failed_pulls,
            failed_installs=failed_installs,
            publishes=publishes,
            refresh_rounds=refresh_rounds,
            timelines=timelines,
            delta_updates=self._delta_updates,
            pull_wire_bytes=pull_wire_bytes,
            delta_stats=fleet.delta_stats().as_dict(),
            pull_latency=pull_latency,
            replicas=len(self._replicas),
            replica_refusals=self._replica_refusals,
            replica_sync_bytes=sum(r.sync_bytes for r in self._replicas),
        )


    # -- streaming mode -------------------------------------------------------

    def _stale_window_width(self) -> float:
        """Window width for the time-resolved folds (default: the trace's
        round interval, else the horizon split evenly over its rounds)."""
        if self._window_seconds is not None:
            if self._window_seconds <= 0:
                raise ValueError(
                    f"window_seconds must be positive: {self._window_seconds}")
            return self._window_seconds
        interval = getattr(self._trace, "interval", None)
        if interval:
            return float(interval)
        width = self._trace.horizon / max(1, self._trace.rounds())
        return width if width > 0 else 1.0

    def _run_streaming(self) -> TraceReplayReport:
        scenario = self._scenario
        trace = self._trace
        tsr = scenario.tsr
        window = self._stale_window_width()

        schedule, plan = self._new_round_state()
        self._link_replicas(schedule)  # before the stream freezes links
        plan.persistent_enclave_memo = True
        plan.keep_timeline = False  # nothing streaming reads it; O(trace)
        scheduler = plan.scheduler
        stream = schedule.stream(0.0)
        session = PlanFetchSession(scenario.network, schedule)
        fleet = ClientFleet(
            scenario, self._clients, name_prefix=f"replay-{trace.seed}",
            session=session, client_downlink=self._client_downlink,
            tenants=self._tenants, delta_updates=self._delta_updates,
            lazy=True, shared_tpm_seed=self._shared_tpm_seed,
            replicas=self._replicas,
        )

        # Pre-scan the trace for each client's *final* pull wave (cheap:
        # one extra lazy generation pass, no events retained).  Once that
        # wave's last fetch drains, the client's node can be torn down.
        final_wave: dict[int, int] = {}
        final_all = -1
        wave_total = 0
        for ev in trace.iter_events():
            if ev.kind != "fleet_pull":
                continue
            if ev.clients is None:
                final_all = wave_total
            else:
                for i in ev.clients:
                    final_wave[i] = wave_total
            wave_total += 1

        #: Baseline: the pre-trace population is "publish zero".
        publishes: list[tuple[float, int]] = [(0.0, scenario.origin.serial)]
        pub_serials: list[int] = [scenario.origin.serial]
        for repo_id in self._tenants:
            try:
                tsr.get_index_bytes(repo_id)
            except PolicyError:
                continue  # tenant not refreshed before the trace
            tsr.record_publication(repo_id, 0.0)
        self._sync_replicas(0.0, schedule=schedule)

        # -- online metric folds (the whole point: no transition lists) --
        #: client name -> [serial, last landing, publish pointer, staleness].
        cstate: dict[str, list] = {}
        stale_sketch = QuantileSketch()
        avail_sketch = QuantileSketch()
        pull_latency = QuantileSketch()
        window_stale: list[float] = []
        window_avail: list[list[float]] = []
        avail_sum = 0.0
        avail_count = 0
        avail_max = 0.0

        def first_newer(serial: int) -> float:
            """Instant of the first publish strictly newer than ``serial``
            (inf: the client is caught up with everything published)."""
            i = bisect_right(pub_serials, serial)
            return publishes[i][0] if i < len(publishes) else math.inf

        def charge_windows(a: float, b: float):
            i = int(a // window)
            while a < b:
                edge = (i + 1) * window
                segment = min(b, edge) - a
                if segment > 0:
                    while len(window_stale) <= i:
                        window_stale.append(0.0)
                    window_stale[i] += segment
                a = edge
                i += 1

        def fold_transition(name: str, landed: float, serial: int):
            """One index landing: close the stale interval it ends (the
            telescoping sum of these equals :func:`staleness_seconds`
            exactly) and consume newly caught-up publishes."""
            nonlocal avail_sum, avail_count, avail_max
            state = cstate.get(name)
            if state is None:
                state = cstate[name] = [serial, landed, 0, 0.0]
                ptr = 0
            else:
                old_serial, t_last, ptr, total = state
                stale_from = max(t_last, first_newer(old_serial))
                if landed > stale_from:
                    total += landed - stale_from
                    charge_windows(stale_from, landed)
                state[0] = serial
                state[1] = landed
                state[3] = total
            while ptr < len(publishes) and pub_serials[ptr] <= serial:
                sample = landed - publishes[ptr][0]
                avail_sum += sample
                avail_count += 1
                if sample > avail_max:
                    avail_max = sample
                avail_sketch.add(sample)
                wi = int(publishes[ptr][0] // window)
                while len(window_avail) <= wi:
                    window_avail.append([0, 0.0, 0.0])
                cell = window_avail[wi]
                cell[0] += 1
                cell[1] += sample
                if sample > cell[2]:
                    cell[2] = sample
                ptr += 1
            state[2] = ptr

        # -- drained-key actions + retirement countdown ------------------
        mark_of: dict[object, tuple[str, int]] = {}
        #: last schedule key -> (client name, client index, wave start).
        last_of: dict[object, tuple[str, int, float]] = {}
        pending_last: dict[int, int] = {}
        last_registered: dict[int, object] = {}
        final_issued: set[int] = set()
        peak_live = 0
        peak_pending = 0

        def retire(index: int):
            pending_last.pop(index, None)
            last_registered.pop(index, None)
            fleet.retire(index, plan_session=session)

        def absorb(drained: dict):
            nonlocal peak_live, peak_pending
            if drained:
                scheduler.retire_settled(drained)
                for key, timing in drained.items():
                    mark = mark_of.pop(key, None)
                    if mark is not None:
                        fold_transition(mark[0], timing.finish, mark[1])
                    last = last_of.pop(key, None)
                    if last is not None:
                        pull_latency.add(timing.finish - last[2])
                        index = last[1]
                        pending_last[index] -= 1
                        if not pending_last[index] and index in final_issued:
                            retire(index)
            live = stream.live_channels
            if live > peak_live:
                peak_live = live
            pending = stream.pending_items
            if pending > peak_pending:
                peak_pending = pending

        refresh_totals = {
            "rounds": 0, "prescans": 0, "downloads_deduped": 0,
            "evicted_redownloads": 0, "downloaded_bytes": 0,
        }
        pull_wire_bytes: list[int] = []
        installs = 0
        failed_pulls = 0
        failed_installs = 0
        wave_ordinal = 0

        lookahead = _HostLookahead(scenario, self._tenants, trace,
                                   self._delta_updates)
        try:
            for event in trace.iter_events():
                stream.advance_to(event.at)
                absorb(stream.drain())
                start = event.at
                if event.kind == "publish":
                    lookahead.before_publish(event)
                    published = publish_event(scenario, event, trace.seed)
                    publishes.append((event.at, scenario.origin.serial))
                    pub_serials.append(scenario.origin.serial)
                    lookahead.after_publish(published)
                elif event.kind == "mirror_sync":
                    targets = (event.mirrors if event.mirrors is not None
                               else list(scenario.mirrors))
                    for name in targets:
                        scenario.mirrors[name].sync()
                elif event.kind == "refresh":
                    repo_ids = list(event.tenants or self._tenants)
                    report = RefreshOrchestrator(
                        tsr, repo_ids, max_streams=self._max_streams,
                        origin=start, plan_state=plan,
                        advance_clock=False,
                    ).run()
                    refresh_totals["rounds"] += 1
                    refresh_totals["prescans"] += report.prescans
                    refresh_totals["downloads_deduped"] += \
                        report.downloads_deduped
                    refresh_totals["evicted_redownloads"] += \
                        report.evicted_redownloads
                    refresh_totals["downloaded_bytes"] += \
                        report.downloaded_bytes
                    for repo_id in repo_ids:
                        tsr.record_publication(repo_id, report.finished_at)
                    self._sync_replicas(report.finished_at, repo_ids,
                                        schedule=schedule)
                elif event.kind == "fleet_pull":
                    indices = (range(fleet.size) if event.clients is None
                               else event.clients)
                    lookahead.before_pull(fleet, indices)
                    clients = fleet.subset(indices)
                    fleet.set_as_of(start)
                    if self._replicas:
                        self._heartbeat_replicas(start, schedule=schedule)
                        fleet.set_replica_refusals(
                            self._freshness_refusals(start))
                    session.begin_wave(start)
                    wave_rng = random.Random(
                        f"trace-pull:{trace.seed}:{event.seed}:{event.at}")
                    wire_before = session.total_wire_bytes
                    outcome = run_pull_wave(
                        clients, wave_rng, event.installs_per_client,
                        plan_session=session, tolerate_failures=True,
                    )
                    pull_wire_bytes.append(
                        session.total_wire_bytes - wire_before)
                    installs += outcome.installs
                    failed_pulls += outcome.failed_pulls
                    failed_installs += outcome.failed_installs
                    for name, serial in outcome.served_serial.items():
                        key = outcome.index_keys.get(name)
                        if key is None:
                            # No fetch was scheduled (e.g. answered from
                            # local state): the index lands at wave start.
                            fold_transition(name, start, serial)
                        else:
                            mark_of[key] = (name, serial)
                    name_to_index = {client.name: i
                                     for i, client in zip(indices, clients)}
                    for name, key in outcome.last_keys.items():
                        index = name_to_index[name]
                        # A failed pull can report a *previous* wave's key
                        # (possibly already drained): never re-register it.
                        if key is None or key == last_registered.get(index):
                            continue
                        last_registered[index] = key
                        last_of[key] = (name, index, start)
                        pending_last[index] = pending_last.get(index, 0) + 1
                    for index in indices:
                        if wave_ordinal == max(final_wave.get(index, -1),
                                               final_all):
                            final_issued.add(index)
                            if not pending_last.get(index):
                                retire(index)
                    wave_ordinal += 1
                    if stream.live_channels > peak_live:
                        peak_live = stream.live_channels
                    if stream.pending_items > peak_pending:
                        peak_pending = stream.pending_items
        finally:
            if refresh_totals["rounds"]:
                # The rounds kept one persistent memo window open; close
                # it so later standalone refreshes start cold.
                tsr._enclave.ecall("end_shared_refresh")

        # Resolve the tail: everything still pending finishes untouched by
        # any future load, so one O(active) clone solve fixes it.
        final_timings = stream.solve_pending()
        tail = []
        for key, (name, serial) in mark_of.items():
            tail.append((final_timings[key].finish, name, serial))
        tail.sort()
        for finish, name, serial in tail:
            fold_transition(name, finish, serial)
        for key, last in last_of.items():
            timing = final_timings.get(key)
            if timing is not None:
                pull_latency.add(timing.finish - last[2])
        wall = stream.max_finish
        for timing in final_timings.values():
            if timing.finish > wall:
                wall = timing.finish
        wall = max([wall, plan.enclave_free, *plan.shard_free.values()])

        # Horizon close-out: charge each client's still-open stale tail.
        horizon = max(trace.horizon, wall)
        stale_sum = 0.0
        stale_max = 0.0
        for name, (serial, t_last, _ptr, total) in cstate.items():
            open_from = max(t_last, first_newer(serial))
            if horizon > open_from:
                total += horizon - open_from
                charge_windows(open_from, horizon)
            stale_sum += total
            if total > stale_max:
                stale_max = total
            stale_sketch.add(total)
        never_pulled = fleet.size - len(cstate)
        if never_pulled:
            stale_sketch.add(0.0, weight=float(never_pulled))

        scenario.clock.advance(wall)
        summary = StreamingReplaySummary(
            staleness_sum=stale_sum,
            staleness_max=stale_max,
            staleness_sketch=stale_sketch,
            availability_sum=avail_sum,
            availability_count=avail_count,
            availability_max=avail_max,
            availability_sketch=avail_sketch,
            window_seconds=window,
            window_stale_seconds=window_stale,
            window_availability=window_avail,
            refresh_totals=refresh_totals,
            clients_booted=fleet.booted_total,
            peak_live_channels=peak_live,
            peak_pending_items=peak_pending,
            final_stream_stats=stream.stats(),
        )
        return TraceReplayReport(
            mode=self._mode,
            rounds=refresh_totals["rounds"],
            clients=fleet.size,
            wall_elapsed=wall,
            horizon=horizon,
            installs=installs,
            failed_pulls=failed_pulls,
            failed_installs=failed_installs,
            publishes=publishes,
            refresh_rounds=[],
            timelines={},
            delta_updates=self._delta_updates,
            pull_wire_bytes=pull_wire_bytes,
            delta_stats=fleet.delta_stats().as_dict(),
            streaming=summary,
            pull_latency=pull_latency,
            replicas=len(self._replicas),
            replica_refusals=self._replica_refusals,
            replica_sync_bytes=sum(r.sync_bytes for r in self._replicas),
        )


def replay_trace(scenario: Scenario, trace: Trace, clients: int = 8,
                 mode: str = "interleaved", **kwargs) -> TraceReplayReport:
    """Convenience wrapper: build a :class:`TraceReplay` and run it."""
    return TraceReplay(scenario, trace, clients=clients, mode=mode,
                       **kwargs).run()
