"""Pipelined refresh engine: overlap downloads, scans, and sanitization.

The paper's refresh is strictly phased — quorum, then every download, then
every sanitization — which leaves the mirrors idle while the enclave works
and the enclave idle while bytes move (Table 3's 17-minute download ahead
of a 13-minute sanitization).  This module reschedules one refresh on the
simulated clock as a pipeline over three resource classes:

* **mirror channels** — one concurrent stream per policy mirror, each at
  the mirror's own serving bandwidth, all sharing the TSR host's downlink
  (max-min fairly, via the incremental solver in
  :class:`repro.simnet.schedule.ParallelTransferSchedule`);
* **the enclave** — a serial channel; a package is scanned the moment its
  blob is local, and sanitized as soon as the scan is done *unless* its
  scripts splice the repository-wide account prelude, in which case it
  waits for the catalog barrier (the last scan);
* **cache shards** — disk reads/writes serialize per shard only, so a
  cache-hit lookup no longer queues behind an insert on another shard.

The download half lives in :class:`MirrorDownloadScheduler`, a *batch*
planner over per-mirror channels: each batch is one repository's changed
set (names + quorum-pinned sizes/hashes + the policy mirrors allowed to
serve it), assigned longest-processing-time-first onto the least-loaded
channel and verified/retried against the live schedule.  One scheduler
can carry batches of *several* repositories on one shared schedule — the
multi-tenant orchestrator (:mod:`repro.core.orchestrator`) interleaves
tenants' downloads this way, while :class:`RefreshPipeline` runs a single
batch and keeps its historical single-repo behaviour.

Correctness is inherited, not re-argued: the engine performs exactly the
same ecalls as the sequential path (scan everything, freeze the catalog,
sanitize everything), and the enclave itself refuses an illegal overlap
(:meth:`TsrProgram.sanitize_package_precatalog` rejects catalog-dependent
packages).  Tests assert the pipelined and sequential modes produce the
same package sets, rejections, and verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sanitizer import SanitizationRejected, SanitizationResult
from repro.core.service import matches_expected
from repro.simnet.latency import (
    LOCAL_DISK_BANDWIDTH_BYTES_PER_S,
    LOCAL_DISK_SEEK_S,
)
from repro.simnet.network import Request
from repro.simnet.schedule import ParallelTransferSchedule
from repro.util.errors import NetworkError

#: Default request size for a package fetch (control message).
_REQUEST_BYTES = 256


@dataclass
class PipelineOutcome:
    """Everything one pipelined refresh produced, plus its schedule."""

    #: Makespan of the overlapped schedule (seconds after the quorum).
    makespan: float
    #: Sum of per-package download durations (setup + transfer + stalls).
    download_elapsed: float
    #: Sum of simulated in-enclave sanitization durations.
    sanitize_elapsed: float
    downloaded_bytes: int
    rejected: list[tuple[str, str]]
    results: list[SanitizationResult]
    catalog_info: dict
    #: Package name -> mirror hostname that served it (downloads only).
    mirror_assignments: dict[str, str] = field(default_factory=dict)
    #: Packages sanitized before the catalog barrier.
    sanitized_early: int = 0
    #: When the catalog froze, relative to the phase start.
    catalog_barrier_at: float = 0.0
    #: Re-downloads forced because the cached blob had been evicted.
    evicted_redownloads: int = 0
    #: Downloads satisfied by the content-addressed store (blobs another
    #: tenant's orchestrated refresh landed), and the bytes not re-moved.
    deduped_downloads: int = 0
    deduped_download_bytes: int = 0


@dataclass
class _Job:
    """One package travelling through the pipeline."""

    name: str
    blob: bytes
    ready: float
    needs_catalog: bool = False


@dataclass(eq=False)  # identity semantics: batches key the retry maps
class DownloadBatch:
    """One repository's download work-list on a shared mirror schedule.

    ``not_before`` is the earliest simulated instant any transfer of this
    batch may start (the moment its quorum information became available);
    results are filled by :meth:`MirrorDownloadScheduler.resolve`.
    """

    batch_id: int
    names: list[str]
    expected: dict[str, dict]
    #: Mirrors allowed to serve this batch, fastest-first (retry pool).
    mirrors: list[dict]
    #: The fan-out subset initial assignments spread over.
    fanout: list[dict]
    not_before: float = 0.0
    #: Best-effort batches (speculative/optimistic fetches) record a
    #: mirror-exhaustion failure in ``failed`` instead of raising.
    best_effort: bool = False
    #: Filled by ``resolve``:
    fetched: dict[str, bytes] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)
    finishes: dict[str, float] = field(default_factory=dict)
    assignments: dict[str, str] = field(default_factory=dict)
    failed: dict[str, str] = field(default_factory=dict)
    #: Marked by :meth:`MirrorDownloadScheduler.settle_round` once the
    #: refresh round that issued this batch has consumed its results:
    #: later ``resolve`` calls stop recomputing it (nobody reads a past
    #: round's finishes), and — on a streaming schedule — its keys may
    #: be retired from the live core as they drain.
    settled: bool = False


class MirrorDownloadScheduler:
    """Batch downloads over per-mirror channels on one live schedule.

    Assignment is longest-processing-time-first onto the channel with the
    least estimated backlog (sizes come from the quorum-validated index,
    so the estimate needs no extra round trips).  Failed or corrupt
    transfers are reinserted into the live schedule on the earliest-free
    not-yet-tried channel — starting no earlier than the moment the
    failure was detected — and the schedule re-solved, so retries overlap
    with still-running downloads instead of running in a serial pass
    after the parallel phase.

    Timing guarantees lean on the schedule's monotonicity: adding load
    never makes an existing stream finish *earlier*, so a gap computed
    against the solved state at decision time (a batch's ``not_before``,
    a retry's detection instant) still holds after later batches and
    retries pile more contention onto the link.
    """

    def __init__(self, service,
                 schedule: ParallelTransferSchedule | None = None,
                 channel_key=None):
        self._service = service
        self._network = service._network
        self._src = self._network.host(service.hostname)
        self._schedule = schedule or ParallelTransferSchedule(
            downlink_bandwidth=self._src.downlink_bandwidth
        )
        #: Mirror hostname -> schedule channel (override to namespace the
        #: download channels on a schedule shared with other traffic).
        self._channel_key = channel_key or (lambda hostname: hostname)
        self._hosts: dict[str, object] = {}
        self._setup_est: dict[str, float] = {}
        #: Estimated backlog end per mirror hostname (assignment heuristic).
        self._estimates: dict[str, float] = {}
        #: Not-yet-retired schedule keys per mirror hostname.
        self._channel_items: dict[str, set] = {}
        self._batches: list[DownloadBatch] = []
        self._next_batch_id = 0
        #: (batch, name) -> bookkeeping for the retry loop.
        self._tried: dict[tuple, set[str]] = {}
        self._attempt_keys: dict[tuple, list] = {}
        self._candidate: dict[tuple, bytes] = {}
        self._success_key: dict[tuple, object] = {}
        self._last_error: dict[tuple, object] = {}
        self._pending: list[tuple] = []
        self._attempt = 0
        #: Schedule key -> (hostname, owning item); consumed by
        #: :meth:`retire_settled`.
        self._key_info: dict[object, tuple] = {}
        #: Settled batch -> its keys not yet drained from the stream
        #: (the batch's bookkeeping is GC'd when the set empties).
        self._undrained: dict[DownloadBatch, set] = {}
        #: Per-hostname floor under retired keys: the latest finish ever
        #: retired from that channel, so ``channel_frees`` stays exact
        #: after the keys are gone.
        self._retired_free: dict[str, float] = {}

    @property
    def schedule(self) -> ParallelTransferSchedule:
        return self._schedule

    @property
    def batches(self) -> list[DownloadBatch]:
        return list(self._batches)

    def _register_mirrors(self, mirrors: list[dict]):
        for mirror in mirrors:
            hostname = mirror["hostname"]
            if hostname in self._hosts:
                continue
            host = self._network.host(hostname)
            self._hosts[hostname] = host
            self._setup_est[hostname] = (
                self._network.latency.base_rtt(self._src.continent,
                                               host.continent)
                + self._network.latency.transfer_time(_REQUEST_BYTES,
                                                      host.bandwidth)
                + host.processing_time + host.extra_delay
            )
            self._channel_items.setdefault(hostname, set())

    def channel_frees(self) -> dict[str, float]:
        """Actual per-mirror backlog ends from a fresh solve."""
        if not any(self._channel_items.values()):
            return {hostname: self._retired_free.get(hostname, 0.0)
                    for hostname in self._hosts}
        timings = self._schedule.solve()
        return {
            hostname: max((timings[key].finish for key in items),
                          default=0.0) if items
            else self._retired_free.get(hostname, 0.0)
            for hostname, items in self._channel_items.items()
        }

    def add_batch(self, names: list[str], expected: dict[str, dict],
                  mirrors: list[dict], fanout: list[dict] | None = None,
                  not_before: float = 0.0,
                  best_effort: bool = False) -> DownloadBatch:
        """Assign and issue one repository's downloads.

        ``not_before`` delays the batch's first transfer per channel to at
        least that schedule offset: the gap is computed against the
        *solved* backlog of each channel at add time, and later additions
        can only push transfers later, never earlier — so a batch issued
        on quorum information available at time T never moves bytes
        before T.
        """
        batch = DownloadBatch(
            batch_id=self._next_batch_id,
            names=list(names),
            expected=expected,
            mirrors=list(mirrors),
            fanout=list(fanout if fanout is not None else mirrors),
            not_before=not_before,
            best_effort=best_effort,
        )
        self._next_batch_id += 1
        self._batches.append(batch)
        self._register_mirrors(batch.mirrors)

        base_free = (self.channel_frees() if not_before > 0.0
                     else {h: 0.0 for h in self._hosts})
        for mirror in batch.fanout:
            self._estimates.setdefault(mirror["hostname"], 0.0)

        fanout_names = {m["hostname"] for m in batch.fanout}
        queues: dict[str, list[str]] = {h: [] for h in fanout_names}
        estimates = self._estimates
        for name in sorted(batch.names,
                           key=lambda n: -batch.expected[n]["size"]):
            hostname = min(fanout_names,
                           key=lambda h: (estimates[h], h))
            queues[hostname].append(name)
            estimates[hostname] += (
                self._setup_est[hostname]
                + batch.expected[name]["size"] / self._hosts[hostname].bandwidth
            )

        gap_done: set[str] = set()
        for mirror in batch.fanout:
            hostname = mirror["hostname"]
            for name in queues[hostname]:
                item = (batch, name)
                self._tried[item] = set()
                self._attempt_keys[item] = []
                extra_wait = 0.0
                if hostname not in gap_done:
                    gap_done.add(hostname)
                    extra_wait = max(0.0, batch.not_before
                                     - base_free.get(hostname, 0.0))
                    estimates[hostname] += extra_wait
                if self._issue(item, hostname, 0, extra_wait) is None:
                    self._pending.append(item)
        return batch

    def _issue(self, item: tuple, hostname: str, attempt: int,
               extra_wait: float):
        """Probe one fetch and enqueue it (or its timeout stall)."""
        batch, name = item
        self._tried[item].add(hostname)
        channel = self._channel_key(hostname)
        try:
            probe = self._network.probe(
                self._service.hostname,
                Request(hostname, "get_package", payload=name),
            )
        except NetworkError as exc:
            # A dead mirror stalls its channel for the timeout.
            self._last_error[item] = exc
            key = ("stall", batch.batch_id, attempt, name)
            self._schedule.enqueue(channel, key,
                                   extra_wait + self._network.timeout, 0,
                                   self._hosts[hostname].bandwidth)
            self._attempt_keys[item].append(key)
            self._channel_items[hostname].add(key)
            self._key_info[key] = (hostname, item)
            return None
        key = (batch.batch_id, attempt, name)
        self._schedule.enqueue(channel, key, extra_wait + probe.setup,
                               probe.size_bytes, probe.bandwidth)
        self._attempt_keys[item].append(key)
        self._channel_items[hostname].add(key)
        self._key_info[key] = (hostname, item)
        self._candidate[item] = probe.payload
        batch.assignments[name] = hostname
        self._success_key[item] = key
        return probe

    def resolve(self) -> dict:
        """Solve, verify, and retry until every batch item lands.

        Fills each batch's ``fetched``/``durations``/``finishes``/
        ``assignments`` and returns the final schedule timings.  Raises
        :class:`NetworkError` when some package stays unavailable after
        every allowed mirror was tried.
        """
        timings = self._schedule.solve()
        while True:
            # Verify against the quorum index; corrupt blobs join retries.
            for item in sorted(self._candidate,
                               key=lambda i: (i[0].batch_id, i[1])):
                batch, name = item
                if matches_expected(self._candidate[item],
                                    batch.expected[name]):
                    batch.fetched[name] = self._candidate[item]
                else:
                    self._last_error[item] = (
                        f"mirror {batch.assignments[name]} served a blob "
                        "that does not match the quorum-validated index"
                    )
                    self._pending.append(item)
                    del batch.assignments[name]
                    del self._success_key[item]
            self._candidate.clear()
            if not self._pending:
                break
            channel_free = {
                hostname: max((timings[key].finish for key in items),
                              default=0.0) if items
                else self._retired_free.get(hostname, 0.0)
                for hostname, items in self._channel_items.items()
            }
            retry_now = sorted(
                set(self._pending),
                key=lambda i: (timings[self._attempt_keys[i][-1]].finish,
                               i[0].batch_id, i[1]),
            )
            self._pending = []
            self._attempt += 1
            for item in retry_now:
                batch, name = item
                detect = timings[self._attempt_keys[item][-1]].finish
                eligible = [m["hostname"] for m in batch.mirrors
                            if m["hostname"] not in self._tried[item]]
                if not eligible:
                    reason = (
                        f"package {name!r} unavailable from every policy "
                        f"mirror: {self._last_error.get(item)}"
                    )
                    if batch.best_effort:
                        batch.failed[name] = reason
                        continue
                    raise NetworkError(reason)
                hostname = min(eligible,
                               key=lambda h: (channel_free[h], h))
                extra_wait = max(0.0, detect - channel_free[hostname])
                probe = self._issue(item, hostname, self._attempt, extra_wait)
                if probe is None:
                    channel_free[hostname] += \
                        extra_wait + self._network.timeout
                    self._pending.append(item)
                else:
                    channel_free[hostname] += (
                        extra_wait + probe.setup
                        + probe.size_bytes / probe.bandwidth
                    )
            timings = self._schedule.solve()

        # (Re)compute from the *current* timings: a later resolve with
        # extra load can shift earlier transfers, never the other way.
        # Settled batches are skipped — their round already consumed the
        # results, and nothing reads a past round's finishes again (on a
        # streaming schedule their timings may already be drained).
        for batch in self._batches:
            if batch.settled:
                continue
            for name in batch.names:
                item = (batch, name)
                if item not in self._success_key:
                    continue  # best-effort failure, recorded in .failed
                batch.durations[name] = sum(
                    timings[key].duration
                    for key in self._attempt_keys[item]
                )
                batch.finishes[name] = timings[self._success_key[item]].finish
        return timings

    # -- streaming retirement ----------------------------------------------

    def settle_round(self):
        """Freeze every open batch: the round that issued them is over.

        Safe in every mode (a settled batch is merely excluded from
        future recomputation); on a streaming schedule it additionally
        licenses :meth:`retire_settled` to drop the batch's keys as the
        stream drains them.
        """
        for batch in self._batches:
            if batch.settled:
                continue
            batch.settled = True
            self._undrained[batch] = {
                key
                for name in batch.names
                for key in self._attempt_keys.get((batch, name), ())
            }
            if not self._undrained[batch]:
                self._gc_batch(batch)

    def retire_settled(self, drained: dict):
        """Drop settled keys the stream has drained; GC empty batches.

        ``drained`` is a drained-timings dict (key -> timing); keys not
        belonging to this scheduler are ignored.  Serial channels finish
        their items in queue order, so the per-hostname ``_retired_free``
        floor — the latest retired finish — can only be overtaken by the
        keys still queued, never undercut.
        """
        key_info = self._key_info
        for key, timing in drained.items():
            info = key_info.pop(key, None)
            if info is None:
                continue
            hostname, item = info
            self._channel_items[hostname].discard(key)
            if timing.finish > self._retired_free.get(hostname, 0.0):
                self._retired_free[hostname] = timing.finish
            batch = item[0]
            undrained = self._undrained.get(batch)
            if undrained is not None:
                undrained.discard(key)
                if not undrained:
                    self._gc_batch(batch)

    def _gc_batch(self, batch: DownloadBatch):
        """Forget a fully drained batch's retry bookkeeping."""
        del self._undrained[batch]
        self._batches.remove(batch)
        for name in batch.names:
            item = (batch, name)
            self._tried.pop(item, None)
            self._attempt_keys.pop(item, None)
            self._candidate.pop(item, None)
            self._success_key.pop(item, None)
            self._last_error.pop(item, None)


class RefreshPipeline:
    """Schedules one repository refresh over mirrors, enclave, and shards."""

    def __init__(self, service, repo_id: str, mirrors: list[dict],
                 expected: dict[str, dict], max_streams: int | None = None):
        self._service = service
        self._network = service._network
        self._repo_id = repo_id
        self._expected = expected
        self._ordered_mirrors = service.mirrors_by_rtt(mirrors)
        streams = len(self._ordered_mirrors)
        if max_streams is not None:
            if max_streams < 1:
                raise ValueError("max_streams must be >= 1")
            streams = min(streams, max_streams)
        self._channels = self._ordered_mirrors[:streams]
        self._shard_free: dict[int, float] = {}
        self._evicted_redownloads = 0
        self._deduped_downloads = 0
        self._deduped_download_bytes = 0

    # -- public entry -------------------------------------------------------

    def run(self, changed: list[str]) -> PipelineOutcome:
        """Fetch, scan, and sanitize ``changed``; returns the schedule."""
        jobs, download_elapsed, downloaded_bytes, assignments = \
            self._acquire_blobs(changed)

        # Scan every blob in index order (zero simulated cost, as in the
        # sequential path: scans are metadata work dwarfed by transfers).
        enclave = self._service._enclave
        by_name = {job.name: job for job in jobs}
        for name in changed:
            job = by_name[name]
            info = enclave.ecall("scan_package", self._repo_id, job.blob)
            job.needs_catalog = info["needs_catalog"]
        barrier_at = max((job.ready for job in jobs), default=0.0)

        # Enclave channel: FIFO by blob-readiness; catalog-independent
        # packages sanitize immediately, the rest queue behind the barrier.
        rejected: list[tuple[str, str]] = []
        results: list[SanitizationResult] = []
        sanitize_elapsed = 0.0
        sanitized_early = 0
        enclave_free = 0.0
        deferred: list[_Job] = []
        for job in sorted(jobs, key=lambda j: (j.ready, j.name)):
            if job.needs_catalog:
                deferred.append(job)
                continue
            start = max(enclave_free, job.ready)
            duration = self._sanitize(job, "sanitize_package_precatalog",
                                      rejected, results)
            if duration is not None:
                sanitize_elapsed += duration
                sanitized_early += 1
                enclave_free = start + duration
                self._charge_shard_write(job.name, len(results[-1].blob),
                                         enclave_free)
        catalog_info = enclave.ecall("finish_catalog", self._repo_id)
        enclave_free = max(enclave_free, barrier_at)
        for job in deferred:
            start = max(enclave_free, job.ready)
            duration = self._sanitize(job, "sanitize_package", rejected,
                                      results)
            if duration is not None:
                sanitize_elapsed += duration
                enclave_free = start + duration
                self._charge_shard_write(job.name, len(results[-1].blob),
                                         enclave_free)

        makespan = max([enclave_free, barrier_at,
                        *self._shard_free.values()] or [0.0])
        return PipelineOutcome(
            makespan=makespan,
            download_elapsed=download_elapsed,
            sanitize_elapsed=sanitize_elapsed,
            downloaded_bytes=downloaded_bytes,
            rejected=rejected,
            results=results,
            catalog_info=catalog_info,
            mirror_assignments=assignments,
            sanitized_early=sanitized_early,
            catalog_barrier_at=barrier_at,
            evicted_redownloads=self._evicted_redownloads,
            deduped_downloads=self._deduped_downloads,
            deduped_download_bytes=self._deduped_download_bytes,
        )

    # -- blob acquisition ---------------------------------------------------

    def _acquire_blobs(self, changed: list[str]) -> tuple[
            list[_Job], float, int, dict[str, str]]:
        """Cache-check then multi-mirror fetch; returns jobs with ready times."""
        cache = self._service.cache
        jobs: list[_Job] = []
        to_download: list[str] = []
        for name in changed:
            want = self._expected[name]
            blob, source, evicted = cache.lookup_blob(self._repo_id, name,
                                                      want)
            if blob is not None:
                if source == "named":
                    ready = self._charge_shard_read(name, len(blob), 0.0)
                else:
                    shard = cache.content_shard_index(want["sha256"])
                    ready = self._shard_busy_index(shard, len(blob), 0.0)
                    self._deduped_downloads += 1
                    self._deduped_download_bytes += len(blob)
                jobs.append(_Job(name=name, blob=blob, ready=ready))
                continue
            if evicted:
                self._evicted_redownloads += 1
            to_download.append(name)

        download_elapsed = 0.0
        downloaded_bytes = 0
        assignments: dict[str, str] = {}
        if not to_download:
            return jobs, download_elapsed, downloaded_bytes, assignments

        fetched, durations, finishes, assignments = \
            self._download_pipelined(to_download)
        # Charge cache writes in completion order: the shard queues see
        # blobs as they land, not in index order.
        for name in sorted(to_download, key=lambda n: (finishes[n], n)):
            blob = fetched[name]
            downloaded_bytes += len(blob)
            download_elapsed += durations[name]
            cache.put_original(self._repo_id, name, blob)
            self._charge_shard_write(name, len(blob), finishes[name])
            jobs.append(_Job(name=name, blob=blob, ready=finishes[name]))
        return jobs, download_elapsed, downloaded_bytes, assignments

    def _download_pipelined(self, names: list[str]) -> tuple[
            dict[str, bytes], dict[str, float], dict[str, float],
            dict[str, str]]:
        """Fan the downloads out over per-mirror channels (one batch on a
        fresh :class:`MirrorDownloadScheduler`)."""
        scheduler = MirrorDownloadScheduler(self._service)
        batch = scheduler.add_batch(names, self._expected,
                                    self._ordered_mirrors,
                                    fanout=self._channels)
        scheduler.resolve()
        return batch.fetched, batch.durations, batch.finishes, \
            batch.assignments

    # -- per-resource accounting -------------------------------------------

    def _sanitize(self, job: _Job, ecall: str,
                  rejected: list[tuple[str, str]],
                  results: list[SanitizationResult]) -> float | None:
        """Really execute one sanitization; returns its simulated duration."""
        try:
            result = self._service._enclave.ecall(ecall, self._repo_id,
                                                  job.blob)
        except SanitizationRejected as exc:
            rejected.append((job.name, exc.reason))
            return None
        duration = self._service.simulated_sanitize_duration(result)
        self._service.cache.put_sanitized(self._repo_id, job.name, result.blob)
        results.append(result)
        return duration

    def _shard_busy(self, name: str, size: int, at: float) -> float:
        """Serialize one disk operation on the blob's cache shard."""
        shard = self._service.cache.shard_index(self._repo_id, name)
        return self._shard_busy_index(shard, size, at)

    def _shard_busy_index(self, shard: int, size: int, at: float) -> float:
        start = max(self._shard_free.get(shard, 0.0), at)
        finish = start + LOCAL_DISK_SEEK_S \
            + size / LOCAL_DISK_BANDWIDTH_BYTES_PER_S
        self._shard_free[shard] = finish
        return finish

    def _charge_shard_read(self, name: str, size: int, at: float) -> float:
        return self._shard_busy(name, size, at)

    def _charge_shard_write(self, name: str, size: int, at: float) -> float:
        return self._shard_busy(name, size, at)
