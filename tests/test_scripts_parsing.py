"""Tests for the shell lexer and parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scripts.lexer import TokenType, tokenize
from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import Command, ConditionalList, IfStatement
from repro.util.errors import ScriptError


class TestLexer:
    def test_simple_words(self):
        tokens = tokenize("mkdir -p /var/lib")
        assert [t.value for t in tokens] == ["mkdir", "-p", "/var/lib"]
        assert all(t.type is TokenType.WORD for t in tokens)

    def test_operators(self):
        tokens = tokenize("a && b || c; d | e")
        types = [t.type for t in tokens]
        assert TokenType.AND_IF in types
        assert TokenType.OR_IF in types
        assert TokenType.SEMI in types
        assert TokenType.PIPE in types

    def test_redirects(self):
        tokens = tokenize("echo hi > /f ; echo ho >> /f")
        types = [t.type for t in tokens]
        assert TokenType.REDIRECT_OUT in types
        assert TokenType.REDIRECT_APPEND in types

    def test_single_quotes_literal(self):
        tokens = tokenize("echo 'a && b > c'")
        assert tokens[1].value == "a && b > c"

    def test_double_quotes_and_escape(self):
        tokens = tokenize('echo "with space" a\\ b')
        assert tokens[1].value == "with space"
        assert tokens[2].value == "a b"

    def test_comments_stripped(self):
        tokens = tokenize("# full line comment\necho hi # not a comment marker mid-word\n")
        values = [t.value for t in tokens if t.type is TokenType.WORD]
        assert values[:2] == ["echo", "hi"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        lines = [t.line for t in tokens if t.type is TokenType.WORD]
        assert lines == [1, 2, 3]

    def test_line_continuation(self):
        tokens = tokenize("echo a \\\n b")
        words = [t.value for t in tokens if t.type is TokenType.WORD]
        assert words == ["echo", "a", "b"]

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ScriptError):
            tokenize("echo 'oops")
        with pytest.raises(ScriptError):
            tokenize('echo "oops')

    def test_adjacent_quoted_parts_merge(self):
        tokens = tokenize("echo 'a'\"b\"c")
        assert tokens[1].value == "abc"


class TestParser:
    def test_simple_command(self):
        script = parse_script("mkdir -p /var/lib\n")
        stmt = script.statements[0]
        assert isinstance(stmt, ConditionalList)
        cmd = stmt.pipelines[0].commands[0]
        assert cmd.name == "mkdir"
        assert cmd.args == ["-p", "/var/lib"]

    def test_shebang_captured(self):
        script = parse_script("#!/bin/sh\ntrue\n")
        assert script.shebang == "#!/bin/sh"

    def test_and_or_chain(self):
        script = parse_script("test -f /f && echo yes || echo no\n")
        stmt = script.statements[0]
        assert stmt.connectors == ["&&", "||"]
        assert len(stmt.pipelines) == 3

    def test_semicolon_sequence(self):
        script = parse_script("mkdir /a; mkdir /b; mkdir /c\n")
        stmt = script.statements[0]
        assert stmt.connectors == [";", ";"]

    def test_pipeline(self):
        script = parse_script("cat /etc/passwd | grep root | wc -l\n")
        pipeline = script.statements[0].pipelines[0]
        assert [c.name for c in pipeline.commands] == ["cat", "grep", "wc"]

    def test_redirect_parsed(self):
        script = parse_script("echo data >> /etc/conf\n")
        cmd = script.statements[0].pipelines[0].commands[0]
        assert cmd.redirect is not None
        assert cmd.redirect.append
        assert cmd.redirect.path == "/etc/conf"

    def test_if_then_fi(self):
        script = parse_script("if test -f /f; then\n  echo found\nfi\n")
        stmt = script.statements[0]
        assert isinstance(stmt, IfStatement)
        assert stmt.condition.pipelines[0].commands[0].name == "test"
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_if_else(self):
        script = parse_script(
            "if grep -q root /etc/passwd; then\n"
            "  echo has-root\nelse\n  adduser -S root\nfi\n"
        )
        stmt = script.statements[0]
        assert stmt.then_body[0].pipelines[0].commands[0].name == "echo"
        assert stmt.else_body[0].pipelines[0].commands[0].name == "adduser"

    def test_nested_if(self):
        script = parse_script(
            "if true; then\n  if false; then\n    echo inner\n  fi\nfi\n"
        )
        outer = script.statements[0]
        inner = outer.then_body[0]
        assert isinstance(inner, IfStatement)

    def test_missing_fi_rejected(self):
        with pytest.raises(ScriptError):
            parse_script("if true; then\n  echo x\n")

    def test_missing_then_rejected(self):
        with pytest.raises(ScriptError):
            parse_script("if true\n echo x\nfi\n")

    def test_redirect_without_target_rejected(self):
        with pytest.raises(ScriptError):
            parse_script("echo x >\n")

    def test_empty_script(self):
        script = parse_script("#!/bin/sh\n# nothing here\n")
        assert script.statements == []

    def test_multiple_statements(self):
        script = parse_script("mkdir /a\nmkdir /b\n\nmkdir /c\n")
        assert len(script.statements) == 3

    def test_iter_commands_recurses(self):
        script = parse_script(
            "mkdir /a\nif test -d /a; then\n  rm -r /a\nelse\n  touch /a\nfi\n"
        )
        names = [c.name for c in script.iter_commands()]
        assert names == ["mkdir", "test", "rm", "touch"]


class TestRender:
    def test_render_roundtrip_simple(self):
        source = "mkdir -p /var/lib\nchmod 755 /var/lib\n"
        script = parse_script(source)
        reparsed = parse_script(script.render())
        assert [c.argv() for c in reparsed.iter_commands()] == [
            c.argv() for c in script.iter_commands()
        ]

    def test_render_quotes_special_words(self):
        script = parse_script("echo 'hello world'\n")
        rendered = script.render()
        assert "'hello world'" in rendered
        reparsed = parse_script(rendered)
        assert next(reparsed.iter_commands()).args == ["hello world"]

    def test_render_if_statement(self):
        source = "if test -f /f; then\n  echo y\nelse\n  echo n\nfi\n"
        script = parse_script(source)
        reparsed = parse_script(script.render())
        assert isinstance(reparsed.statements[0], IfStatement)

    def test_render_redirect(self):
        script = parse_script("echo x >> /f\n")
        reparsed = parse_script(script.render())
        cmd = next(reparsed.iter_commands())
        assert cmd.redirect.append and cmd.redirect.path == "/f"

    @given(st.lists(st.sampled_from(
        ["mkdir /a", "touch /b", "true", "echo hi", "rm -f /c && true",
         "grep -q x /f || echo miss"]), min_size=1, max_size=6))
    @settings(max_examples=25)
    def test_render_reparse_stable(self, lines):
        source = "\n".join(lines) + "\n"
        once = parse_script(source).render()
        twice = parse_script(once).render()
        assert once == twice
