"""Tokenizer for the shell subset.

Produces WORD, operator, and NEWLINE tokens.  Quoting follows POSIX basics:
single quotes are literal, double quotes allow spaces, backslash escapes the
next character outside single quotes.  Comments run to end of line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ScriptError


class TokenType(enum.Enum):
    WORD = "word"
    AND_IF = "&&"
    OR_IF = "||"
    SEMI = ";"
    PIPE = "|"
    REDIRECT_OUT = ">"
    REDIRECT_APPEND = ">>"
    NEWLINE = "newline"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int


_OPERATORS = {
    "&&": TokenType.AND_IF,
    "||": TokenType.OR_IF,
    ";": TokenType.SEMI,
    "|": TokenType.PIPE,
    ">>": TokenType.REDIRECT_APPEND,
    ">": TokenType.REDIRECT_OUT,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize shell source; raises :class:`ScriptError` on bad quoting."""
    tokens: list[Token] = []
    line = 1
    i = 0
    current: list[str] = []
    current_started = False

    def flush():
        nonlocal current_started
        if current_started:
            tokens.append(Token(TokenType.WORD, "".join(current), line))
            current.clear()
            current_started = False

    while i < len(text):
        char = text[i]
        if char == "\n":
            flush()
            tokens.append(Token(TokenType.NEWLINE, "\n", line))
            line += 1
            i += 1
        elif char in " \t":
            flush()
            i += 1
        elif char == "#" and not current_started:
            while i < len(text) and text[i] != "\n":
                i += 1
        elif char == "\\":
            if i + 1 >= len(text):
                raise ScriptError(f"dangling backslash at line {line}")
            if text[i + 1] == "\n":  # line continuation
                flush()
                line += 1
                i += 2
            else:
                current.append(text[i + 1])
                current_started = True
                i += 2
        elif char == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise ScriptError(f"unterminated single quote at line {line}")
            current.append(text[i + 1:end])
            current_started = True
            i = end + 1
        elif char == '"':
            i += 1
            buf: list[str] = []
            while i < len(text):
                if text[i] == '"':
                    break
                if text[i] == "\\" and i + 1 < len(text) and text[i + 1] in '"\\$':
                    buf.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == "\n":
                    line += 1
                buf.append(text[i])
                i += 1
            else:
                raise ScriptError(f"unterminated double quote at line {line}")
            current.append("".join(buf))
            current_started = True
            i += 1
        elif text.startswith((">>", "&&", "||"), i):
            flush()
            op = text[i:i + 2]
            tokens.append(Token(_OPERATORS[op], op, line))
            i += 2
        elif char in ";|>":
            flush()
            tokens.append(Token(_OPERATORS[char], char, line))
            i += 1
        else:
            current.append(char)
            current_started = True
            i += 1
    flush()
    return tokens
