"""Rollback protection for TSR state across restarts (paper section 5.5).

In-enclave metadata (the upstream and sanitized indexes) is lost on
restart, and the on-disk copy is under adversary control.  TSR therefore:

1. increments a TPM monotonic counter when persisting,
2. seals ``state || counter_value`` with the enclave sealing key,
3. on restart, unseals and requires the embedded counter to equal the
   TPM's current value — a replayed older blob embeds a smaller value and
   is rejected.
"""

from __future__ import annotations

import json

from repro.sgx.sealing import seal, unseal
from repro.tpm.device import Tpm, TpmError
from repro.util.errors import RollbackError, SealingError

_CONTEXT = b"tsr-state-v1"


class FreshnessManager:
    """Binds sealed state blobs to a TPM monotonic counter."""

    def __init__(self, tpm: Tpm, counter_name: str = "tsr-state"):
        self._tpm = tpm
        self._counter = counter_name
        try:
            tpm.create_counter(counter_name)
        except TpmError:
            pass  # counter survives restarts; reuse it

    def persist(self, sealing_key: bytes, state: dict) -> bytes:
        """Increment the counter and seal state bound to its new value."""
        counter_value = self._tpm.increment_counter(self._counter)
        payload = json.dumps({"mc": counter_value, "state": state},
                             sort_keys=True).encode()
        return seal(sealing_key, payload, context=_CONTEXT)

    def restore(self, sealing_key: bytes, blob: bytes) -> dict:
        """Unseal and verify freshness; raises on rollback or tampering."""
        try:
            payload = unseal(sealing_key, blob, context=_CONTEXT)
        except SealingError as exc:
            raise RollbackError(f"sealed state unusable: {exc}") from exc
        try:
            decoded = json.loads(payload)
            embedded_mc = decoded["mc"]
            state = decoded["state"]
        except (ValueError, KeyError) as exc:
            raise RollbackError(f"sealed state malformed: {exc}") from exc
        current = self._tpm.read_counter(self._counter)
        if embedded_mc != current:
            raise RollbackError(
                f"stale sealed state: embeds counter {embedded_mc}, "
                f"TPM counter is {current} (rollback attack)"
            )
        return state
