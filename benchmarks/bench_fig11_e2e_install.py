"""Figure 11 — end-to-end latency of installing a software update.

Paper: average update installation latency is 141 ms from TSR vs 110 ms
from a plain Alpine mirror in the same data center — TSR's delta comes
from installing the per-file signatures (xattrs) and the slightly larger
packages.

Methodology reproduced from the paper: install the package, tamper with
the installed-package database to make it look outdated, then measure the
latency of the upgrade.  Local package-manager work is mapped to time with
the calibrated :class:`InstallCostModel`; network time comes from the
simulated clock.
"""

import random

from repro.bench.costs import InstallCostModel
from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration

_SAMPLE = 40


def _measure_updates(scenario, pm, node, names, cost_model):
    latencies = []
    for name in names:
        pm.install(name)
        node.pkgdb.mark_outdated(name)
        start = scenario.clock.now()
        stats = pm.install(name)  # performs the upgrade
        network_time = scenario.clock.now() - start
        latencies.append(network_time + cost_model.install_seconds(stats))
    return latencies


def test_fig11_end_to_end_install(content_scenario, benchmark):
    scenario = content_scenario
    cost_model = InstallCostModel()
    sanitized_names = {r.package.name for r in scenario.refresh_report.results}
    rng = random.Random(11)
    # Choose dependency-free packages so each measurement is one package.
    candidates = [
        name for name in sorted(sanitized_names)
        if not scenario.origin.index().get(name).depends
    ]
    names = rng.sample(candidates, min(_SAMPLE, len(candidates)))

    tsr_node, tsr_pm = scenario.new_node("fig11-tsr-node", use_tsr=True)
    tsr_pm.update()
    tsr_latencies = benchmark.pedantic(
        _measure_updates,
        args=(scenario, tsr_pm, tsr_node, names, cost_model),
        rounds=1, iterations=1,
    )

    mirror_node, mirror_pm = scenario.new_node("fig11-mirror-node",
                                               use_tsr=False)
    mirror_pm.update()
    mirror_latencies = _measure_updates(scenario, mirror_pm, mirror_node,
                                        names, cost_model)

    mean = lambda xs: sum(xs) / len(xs)
    table = PaperTable(
        experiment="Figure 11",
        title="End-to-end latency of installing an update (simulated)",
        columns=["repository", "paper mean", "measured mean"],
    )
    table.add_row("Alpine mirror (same DC)", "110 ms",
                  human_duration(mean(mirror_latencies)))
    table.add_row("TSR", "141 ms", human_duration(mean(tsr_latencies)))
    ratio = mean(tsr_latencies) / mean(mirror_latencies)
    table.add_row("TSR / mirror", f"{141 / 110:.2f}x", f"{ratio:.2f}x")
    table.note(f"{len(names)} dependency-free packages; database tampered "
               "to force each upgrade, as in the paper")
    record_table(table)

    # Shape: TSR is slightly slower (signature installation), within ~2x.
    assert mean(tsr_latencies) > mean(mirror_latencies)
    assert ratio < 2.0
