"""TSR's on-disk package cache (paper section 5.5).

The cache lives on the *untrusted* local disk of the machine hosting TSR:
an adversary with root can read, replace, or roll back its contents at
will.  TSR therefore treats cache reads as untrusted input — before serving
a cached sanitized package, the enclave re-checks its hash against the
in-enclave sanitized index (see :mod:`repro.core.program`).

Both the original upstream blob and the sanitized blob are cached: the
former avoids re-downloading on re-sanitization, the latter turns a
download request into a disk read (Fig. 10's 129x).
"""

from __future__ import annotations

from repro.osim.fs import SimFileSystem
from repro.util.errors import FileSystemError

ORIGINAL_PREFIX = "/var/cache/tsr/original"
SANITIZED_PREFIX = "/var/cache/tsr/sanitized"


class PackageCache:
    """Name-addressed blob store over the untrusted host filesystem."""

    def __init__(self, disk: SimFileSystem | None = None):
        self.disk = disk or SimFileSystem()

    @staticmethod
    def _path(prefix: str, repo_id: str, name: str) -> str:
        return f"{prefix}/{repo_id}/{name}.apk"

    # -- originals ----------------------------------------------------------

    def put_original(self, repo_id: str, name: str, blob: bytes):
        self.disk.write_file(self._path(ORIGINAL_PREFIX, repo_id, name), blob)

    def get_original(self, repo_id: str, name: str) -> bytes | None:
        return self._read(self._path(ORIGINAL_PREFIX, repo_id, name))

    def has_original(self, repo_id: str, name: str) -> bool:
        return self.disk.isfile(self._path(ORIGINAL_PREFIX, repo_id, name))

    # -- sanitized ------------------------------------------------------------

    def put_sanitized(self, repo_id: str, name: str, blob: bytes):
        self.disk.write_file(self._path(SANITIZED_PREFIX, repo_id, name), blob)

    def get_sanitized(self, repo_id: str, name: str) -> bytes | None:
        return self._read(self._path(SANITIZED_PREFIX, repo_id, name))

    def has_sanitized(self, repo_id: str, name: str) -> bool:
        return self.disk.isfile(self._path(SANITIZED_PREFIX, repo_id, name))

    def invalidate(self, repo_id: str, name: str):
        for prefix in (ORIGINAL_PREFIX, SANITIZED_PREFIX):
            path = self._path(prefix, repo_id, name)
            if self.disk.isfile(path):
                self.disk.remove(path)

    # -- adversary surface -------------------------------------------------------

    def tamper_sanitized(self, repo_id: str, name: str, blob: bytes):
        """Root-adversary helper used by tests/benches: replace a cached
        sanitized package (e.g. with an outdated version) behind TSR's back."""
        self.disk.write_file(self._path(SANITIZED_PREFIX, repo_id, name), blob)

    def _read(self, path: str) -> bytes | None:
        try:
            return self.disk.read_file(path)
        except FileSystemError:
            return None
