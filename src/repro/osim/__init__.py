"""Simulated integrity-enforced operating system.

Provides the in-memory filesystem with extended attributes, the account
database files, the measured boot chain, the installed-package database,
and an ``apk``-like package manager that executes installation scripts via
the shell interpreter.  The IMA subsystem (:mod:`repro.ima`) hooks into the
filesystem's open path, exactly where the kernel's IMA sits.
"""

from repro.osim.fs import SimFileSystem
from repro.osim.os import AttestationEvidence, BASELINE_FILES, IntegrityEnforcedOS
from repro.osim.pkgdb import InstalledPackage, PackageDatabase
from repro.osim.pkgmgr import InstallStats, PackageManager, RepositoryClient
from repro.osim.version import Version, is_newer

__all__ = [
    "SimFileSystem",
    "IntegrityEnforcedOS",
    "AttestationEvidence",
    "BASELINE_FILES",
    "InstalledPackage",
    "PackageDatabase",
    "PackageManager",
    "RepositoryClient",
    "InstallStats",
    "Version",
    "is_newer",
]
