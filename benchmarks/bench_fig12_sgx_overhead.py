"""Figure 12 — sanitization time inside vs outside the SGX enclave.

Paper: SGX adds 1.18x (p50), 1.12x (p75), 1.16x (p95); packages whose
working set exceeds the 128 MB EPC pay up to 1.96x (paging); the full-
repository sanitization grows from 9.5 min to 13.6 min (1.43x).

Native times are real measurements of our sanitizer; in-enclave times map
them through the calibrated EPC cost model (the documented hardware
substitution — see DESIGN.md/EXPERIMENTS.md).  EPC is scaled with the
workload so the top ~5 % of packages exceed it, as in the paper.
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration, percentile

_PAPER_RATIOS = {"p50": 1.18, "p75": 1.12, "p95": 1.16, "tail": 1.96,
                 "total": 1.43}


def test_fig12_sgx_overhead(content_scenario, benchmark):
    results = content_scenario.refresh_report.results
    epc = content_scenario.tsr.epc_model

    def compute():
        native = [r.timings.total for r in results]
        enclave = [
            epc.simulated_duration(r.timings.total, r.working_set_bytes)
            for r in results
        ]
        return native, enclave

    native, enclave = benchmark.pedantic(compute, rounds=1, iterations=1)
    ratios = sorted(e / n for n, e in zip(native, enclave))
    exceeding = [
        epc.simulated_duration(r.timings.total, r.working_set_bytes)
        / r.timings.total
        for r in results if epc.exceeds_epc(r.working_set_bytes)
    ]

    table = PaperTable(
        experiment="Figure 12",
        title="Sanitization inside vs outside SGX",
        columns=["metric", "paper", "measured"],
    )
    table.add_row("overhead p50", "1.18x", f"{percentile(ratios, 50):.2f}x")
    table.add_row("overhead p75", "1.12x", f"{percentile(ratios, 75):.2f}x")
    table.add_row("overhead p95", "1.16x", f"{percentile(ratios, 95):.2f}x")
    if exceeding:
        table.add_row("EPC-exceeding packages", "up to 1.96x",
                      f"up to {max(exceeding):.2f}x "
                      f"({len(exceeding)} pkgs)")
    total_native = sum(native)
    total_enclave = sum(enclave)
    table.add_row(
        "whole repository", "9.5 -> 13.6 min (1.43x)",
        f"{human_duration(total_native)} -> {human_duration(total_enclave)}"
        f" ({total_enclave / total_native:.2f}x)",
    )
    table.note(f"EPC scaled to {epc.epc_bytes} bytes alongside the workload")
    record_table(table)

    # Shape: ~1.2x base overhead, ~2x past the EPC, total in between.
    assert 1.1 < percentile(ratios, 50) < 1.3
    assert exceeding, "workload must contain EPC-exceeding packages"
    assert max(exceeding) > 1.5
    assert 1.1 < total_enclave / total_native < 1.96
