"""Tests for the SGX simulator: enclaves, sealing, attestation, EPC model."""

import pytest

from repro.crypto.rsa import generate_keypair
from repro.sgx.enclave import Enclave, EnclaveError, measure_program
from repro.sgx.epc import DEFAULT_EPC_BYTES, EpcModel
from repro.sgx.platform import AttestationService, SgxCpu
from repro.sgx.sealing import seal, unseal
from repro.util.errors import AttestationError, SealingError


class KeyVaultProgram:
    """A minimal enclave program holding a secret signing key."""

    def __init__(self):
        self._signing_key = generate_keypair(512, seed=777)

    def public_key_pem(self) -> str:
        return self._signing_key.public_key.to_pem()

    def sign(self, message: bytes) -> bytes:
        return self._signing_key.sign(message)

    def _secret_key(self):
        return self._signing_key


@pytest.fixture(scope="module")
def service():
    return AttestationService()


@pytest.fixture(scope="module")
def cpu(service):
    return SgxCpu("cpu-001", service, key_bits=512)


@pytest.fixture()
def enclave(cpu):
    return Enclave(cpu, KeyVaultProgram)


class TestEnclaveBoundary:
    def test_ecall_public_entry_point(self, enclave):
        pem = enclave.ecall("public_key_pem")
        assert "PUBLIC KEY" in pem

    def test_signing_works_through_ecall(self, enclave):
        from repro.crypto.rsa import RsaPublicKey
        pub = RsaPublicKey.from_pem(enclave.ecall("public_key_pem"))
        signature = enclave.ecall("sign", b"message")
        assert pub.verify(b"message", signature)

    def test_private_entry_point_blocked(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ecall("_secret_key")

    def test_unknown_entry_point_blocked(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ecall("does_not_exist")

    def test_host_memory_dump_hides_key(self, enclave):
        dump = enclave.host_memory_dump()
        flattened = repr(dump)
        assert "signing_key" not in flattened
        assert "RsaPrivateKey" not in flattened
        assert set(dump) == {"enclave_loaded", "mrenclave", "cpu_id"}

    def test_destroy_loses_state(self, enclave):
        enclave.destroy()
        assert not enclave.alive
        with pytest.raises(EnclaveError):
            enclave.ecall("sign", b"x")
        with pytest.raises(EnclaveError):
            enclave.sealing_key()


class TestMeasurement:
    def test_same_program_same_measurement(self, cpu):
        a = Enclave(cpu, KeyVaultProgram)
        b = Enclave(cpu, KeyVaultProgram)
        assert a.mrenclave == b.mrenclave

    def test_different_program_different_measurement(self):
        class OtherProgram:
            def noop(self):
                return None

        assert measure_program(KeyVaultProgram) != measure_program(OtherProgram)


class TestSealing:
    def test_seal_unseal_roundtrip(self):
        key = bytes(range(32))
        blob = seal(key, b"metadata indexes + counter 7")
        assert unseal(key, blob) == b"metadata indexes + counter 7"

    def test_wrong_key_rejected(self):
        blob = seal(bytes(32), b"secret")
        with pytest.raises(SealingError):
            unseal(bytes([1] * 32), blob)

    def test_tampered_blob_rejected(self):
        key = bytes(range(32))
        blob = bytearray(seal(key, b"secret"))
        blob[20] ^= 0x01
        with pytest.raises(SealingError):
            unseal(key, bytes(blob))

    def test_context_binding(self):
        key = bytes(range(32))
        blob = seal(key, b"data", context=b"repo-1")
        with pytest.raises(SealingError):
            unseal(key, blob, context=b"repo-2")
        assert unseal(key, blob, context=b"repo-1") == b"data"

    def test_enclave_binding_end_to_end(self, cpu, service):
        enclave_a = Enclave(cpu, KeyVaultProgram)

        class DifferentProgram:
            def noop(self):
                return None

        enclave_b = Enclave(cpu, DifferentProgram)
        blob = seal(enclave_a.sealing_key(), b"state")
        # The same CPU but a different enclave build cannot unseal.
        with pytest.raises(SealingError):
            unseal(enclave_b.sealing_key(), blob)

    def test_cpu_binding_end_to_end(self, service):
        cpu_a = SgxCpu("cpu-a", service, key_bits=512)
        cpu_b = SgxCpu("cpu-b", service, key_bits=512)
        enclave_a = Enclave(cpu_a, KeyVaultProgram)
        enclave_b = Enclave(cpu_b, KeyVaultProgram)
        blob = seal(enclave_a.sealing_key(), b"state")
        with pytest.raises(SealingError):
            unseal(enclave_b.sealing_key(), blob)

    def test_empty_plaintext(self):
        key = bytes(32)
        assert unseal(key, seal(key, b"")) == b""

    def test_bad_key_size_rejected(self):
        with pytest.raises(SealingError):
            seal(b"short", b"x")


class TestRemoteAttestation:
    def test_quote_verifies_on_genuine_cpu(self, enclave, service):
        quote = enclave.quote(report_data=b"tsr-pubkey-fingerprint")
        assert quote.verify(service, expected_mrenclave=enclave.mrenclave)

    def test_report_data_bound(self, enclave, service):
        quote = enclave.quote(report_data=b"original")
        forged = type(quote)(
            cpu_id=quote.cpu_id,
            mrenclave=quote.mrenclave,
            report_data=b"swapped",
            signature=quote.signature,
        )
        with pytest.raises(AttestationError):
            forged.verify(service)

    def test_unknown_cpu_rejected(self, enclave):
        empty_service = AttestationService()
        quote = enclave.quote(b"data")
        with pytest.raises(AttestationError):
            quote.verify(empty_service)

    def test_wrong_mrenclave_rejected(self, enclave, service):
        quote = enclave.quote(b"data")
        with pytest.raises(AttestationError):
            quote.verify(service, expected_mrenclave=b"\x00" * 32)


class TestEpcModel:
    def test_below_epc_base_factor(self):
        model = EpcModel()
        assert model.overhead_factor(1024) == pytest.approx(1.18)
        assert model.overhead_factor(DEFAULT_EPC_BYTES) == pytest.approx(1.18)

    def test_above_epc_grows(self):
        model = EpcModel()
        half_over = model.overhead_factor(int(DEFAULT_EPC_BYTES * 1.5))
        assert 1.18 < half_over < 1.96

    def test_saturates_at_max(self):
        model = EpcModel()
        assert model.overhead_factor(10 * DEFAULT_EPC_BYTES) == pytest.approx(1.96)

    def test_paper_shape_median_vs_tail(self):
        """Fig. 12: small packages ~1.18x, EPC-exceeding packages ~1.96x."""
        model = EpcModel()
        small = model.simulated_duration(1.0, 10 * 1024 * 1024)
        huge = model.simulated_duration(1.0, 4 * DEFAULT_EPC_BYTES)
        assert small == pytest.approx(1.18)
        assert huge == pytest.approx(1.96)

    def test_exceeds_epc_predicate(self):
        model = EpcModel(epc_bytes=100)
        assert not model.exceeds_epc(100)
        assert model.exceeds_epc(101)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EpcModel().overhead_factor(-1)
        with pytest.raises(ValueError):
            EpcModel().simulated_duration(-1.0, 10)
