"""Standalone hotspot profiler for the host-time critical paths.

Runs the two workloads the raw-speed pass optimizes — a multi-round
trace replay and a fleet-shaped solver solve — under cProfile at modest
scales, and prints the top-20 functions by cumulative time.  This is the
quick way to answer "where does host time go now?" without booting the
full benchmark suite (which has the same view behind ``--profile``):

    PYTHONPATH=src python benchmarks/profile_hotspots.py            # all
    PYTHONPATH=src python benchmarks/profile_hotspots.py replay
    PYTHONPATH=src python benchmarks/profile_hotspots.py replay-streaming
    PYTHONPATH=src python benchmarks/profile_hotspots.py serve
    PYTHONPATH=src python benchmarks/profile_hotspots.py solver
    PYTHONPATH=src python benchmarks/profile_hotspots.py parallel

Scales are deliberately small (6 rounds / 2 tenants / 8 clients;
10k channels; 480-client rotation for the streaming target) so a
profile run takes seconds; the *shape* of the profile — which layers
dominate — matches the full benches.  The streaming target also prints
the tracemalloc peak next to the CPU profile, since O(active) memory is
that path's contract.
"""

from __future__ import annotations

import cProfile
import pstats
import random
import sys
import time


def _print_stats(label: str, profiler: cProfile.Profile,
                 wall: float) -> None:
    print()
    print("=" * 74)
    print(f"{label}  (host wall: {wall:.2f} s; top 20 by cumulative time)")
    print("=" * 74)
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


def profile_replay() -> None:
    from repro.archive.apk import ApkPackage, PackageFile
    from repro.mirrors.builder import MirrorSpec
    from repro.simnet.latency import Continent
    from repro.workload.generator import generate_trace
    from repro.workload.replay import replay_trace
    from repro.workload.scenario import (
        build_multi_tenant_scenario,
        multi_tenant_refresh,
    )

    packages = []
    for i in range(8):
        files = [PackageFile(f"/usr/bin/pkg{i}",
                             (b"\x7fELF" + bytes([i])) * 2000)]
        files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 300)
                  for j in range(11)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   files=files))
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6, packages=packages,
        mirror_specs=(MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
                      MirrorSpec("mirror-na-1.example",
                                 Continent.NORTH_AMERICA)))
    multi_tenant_refresh(scenario)
    trace = generate_trace(rounds=6, interval=0.4, publish_fraction=0.25,
                           seed=5)

    profiler = cProfile.Profile()
    begin = time.perf_counter()
    profiler.enable()
    replay_trace(scenario, trace, clients=8, mode="interleaved")
    profiler.disable()
    _print_stats("trace replay (6 rounds / 2 tenants / 8 clients, "
                 "interleaved)", profiler, time.perf_counter() - begin)


def profile_replay_streaming() -> None:
    """CPU + memory hotspots of the streaming replay path: a rotating
    fleet large enough that lazy boot, channel retirement, and the
    online metric folds all carry real weight in the profile."""
    import tracemalloc

    from repro.archive.apk import ApkPackage, PackageFile
    from repro.mirrors.builder import MirrorSpec
    from repro.simnet.latency import Continent
    from repro.workload.generator import generate_trace
    from repro.workload.replay import replay_trace
    from repro.workload.scenario import (
        build_multi_tenant_scenario,
        multi_tenant_refresh,
    )

    packages = []
    for i in range(8):
        files = [PackageFile(f"/usr/bin/pkg{i}",
                             (b"\x7fELF" + bytes([i])) * 200)]
        files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 300)
                  for j in range(7)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   files=files))
    mirror_specs = (MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
                    MirrorSpec("mirror-na-1.example",
                               Continent.NORTH_AMERICA))
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6, packages=packages,
        mirror_specs=mirror_specs)
    multi_tenant_refresh(scenario)
    trace = generate_trace(
        rounds=24, interval=3.0, pull_lag=2.5, publish_fraction=0.25,
        seed=5, mirror_names=[spec.name for spec in mirror_specs],
        fleet_size=480, clients_per_wave=20, streaming=True)

    profiler = cProfile.Profile()
    tracemalloc.start()
    begin = time.perf_counter()
    profiler.enable()
    report = replay_trace(scenario, trace, clients=480, mode="streaming",
                          shared_tpm_seed=2020)
    profiler.disable()
    wall = time.perf_counter() - begin
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    _print_stats("streaming trace replay (480-client rotation, 20/wave, "
                 "24 rounds)", profiler, wall)
    print(f"tracemalloc peak: {peak / 1e6:.2f} MB "
          f"(peak live channels: {report.streaming.peak_live_channels}, "
          f"clients booted: {report.streaming.clients_booted})")


def profile_serve() -> None:
    """Hotspots of the replica-backed serving tier: a pull-heavy replay
    (rotating fleet, waves pinned at the refresh instant) against 4 edge
    replicas, so sync envelope verification, freshness checks, and the
    publication-backed serve paths all show up with real weight."""
    from repro.archive.apk import ApkPackage, PackageFile
    from repro.core.replica import ReplicaTSR
    from repro.mirrors.builder import MirrorSpec
    from repro.simnet.latency import Continent
    from repro.workload.generator import Trace, TraceEvent
    from repro.workload.replay import replay_trace
    from repro.workload.scenario import (
        build_multi_tenant_scenario,
        multi_tenant_refresh,
    )

    packages = []
    for i in range(8):
        files = [PackageFile(f"/usr/bin/pkg{i}",
                             (b"\x7fELF" + bytes([i])) * 300)]
        files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 300)
                  for j in range(11)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   files=files))
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6, packages=packages,
        mirror_specs=(MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
                      MirrorSpec("mirror-eu-2.example", Continent.EUROPE)))
    multi_tenant_refresh(scenario)
    rounds, wave = 8, 24
    events = []
    for r in range(rounds):
        at = r * 3.0
        events.append(TraceEvent(at=at, kind="publish", fraction=0.35,
                                 seed=r))
        events.append(TraceEvent(at=at + 0.2, kind="mirror_sync"))
        events.append(TraceEvent(at=at + 0.4, kind="refresh"))
        events.append(TraceEvent(at=at + 0.4, kind="fleet_pull",
                                 clients=tuple(range(r * wave,
                                                     (r + 1) * wave)),
                                 installs_per_client=3, seed=1000 + r))
    trace = Trace(events=events, horizon=rounds * 3.0, seed=5)
    replicas = [ReplicaTSR(f"replica-{i:02d}.example", scenario.tsr,
                           sync_cadence=1.0) for i in range(4)]

    profiler = cProfile.Profile()
    begin = time.perf_counter()
    profiler.enable()
    replay_trace(scenario, trace, clients=rounds * wave,
                 mode="interleaved", delta_updates=True, replicas=replicas,
                 shared_tpm_seed=2020)
    profiler.disable()
    _print_stats(f"replica serving ({rounds * wave}-client rotation, "
                 f"{wave}/wave, {rounds} rounds, 4 replicas)", profiler,
                 time.perf_counter() - begin)


def profile_parallel() -> None:
    """Hotspots of a pooled replay, plus the pool's own accounting: which
    main-process layers remain serial once the content-determined kernels
    are farmed out, and how much of the run's window the workers actually
    overlapped with the main timeline."""
    from repro.archive.apk import ApkPackage, PackageFile
    from repro.mirrors.builder import MirrorSpec
    from repro.simnet.latency import Continent
    from repro.util.hostpool import (
        clear_content_memos,
        get_pool,
        reset_pool,
        set_workers,
    )
    from repro.workload.generator import generate_trace
    from repro.workload.replay import replay_trace
    from repro.workload.scenario import (
        build_multi_tenant_scenario,
        multi_tenant_refresh,
    )

    packages = []
    for i in range(10):
        files = [PackageFile(f"/usr/bin/pkg{i}",
                             (b"\x7fELF" + bytes([i])) * 3000)]
        files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 300)
                  for j in range(11)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   files=files))
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6, packages=packages,
        mirror_specs=(MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
                      MirrorSpec("mirror-na-1.example",
                                 Continent.NORTH_AMERICA)))
    multi_tenant_refresh(scenario)
    trace = generate_trace(rounds=6, interval=0.4, publish_fraction=0.25,
                           seed=5)

    clear_content_memos()
    set_workers(4)
    profiler = cProfile.Profile()
    begin = time.perf_counter()
    profiler.enable()
    try:
        replay_trace(scenario, trace, clients=8, mode="interleaved")
    finally:
        profiler.disable()
    wall = time.perf_counter() - begin
    pool = get_pool()
    stats = pool.stats() if pool is not None else {}
    reset_pool()
    clear_content_memos()
    _print_stats("pooled trace replay (6 rounds / 2 tenants / 8 clients, "
                 "4 workers)", profiler, wall)
    if stats:
        busy = stats["worker_busy_seconds"]
        print(f"pool: {stats['workers']} workers, {stats['tasks']} tasks "
              f"({stats['fallbacks']} inline fallbacks), "
              f"worker busy {sum(busy.values()):.2f} s total, "
              f"overlap with main timeline {stats['overlap_seconds']:.2f} s "
              f"of a {stats['window_seconds']:.2f} s window")
        for pid in sorted(busy):
            print(f"  worker pid {pid}: busy {busy[pid]:.2f} s")
        print(f"serial residue: {stats['serial_residue_fraction']:.0%} of "
              "the window had no worker running — the profile above shows "
              "where that residue lives")


def profile_solver() -> None:
    from repro.simnet.schedule import ParallelTransferSchedule

    rng = random.Random(7)
    schedule = ParallelTransferSchedule(
        downlink_bandwidth=100 * 1024 * 1024)
    for c in range(10_000):
        channel = f"client-{c:05d}"
        schedule.limit_channel(channel,
                               rng.choice((1, 2, 4, 8)) * 1024 * 1024)
        for i in range(3):
            schedule.enqueue(channel, (channel, i),
                             setup=0.03 + rng.random() * 0.02,
                             size_bytes=rng.randint(20_000, 600_000),
                             bandwidth=3 * 1024 * 1024)

    profiler = cProfile.Profile()
    begin = time.perf_counter()
    profiler.enable()
    schedule.solve()
    profiler.disable()
    _print_stats("schedule solve (10k channels x 3 items)", profiler,
                 time.perf_counter() - begin)


def main(argv: list[str]) -> int:
    targets = {"replay": (profile_replay,),
               "replay-streaming": (profile_replay_streaming,),
               "serve": (profile_serve,),
               "solver": (profile_solver,),
               "parallel": (profile_parallel,),
               "all": (profile_replay, profile_replay_streaming,
                       profile_serve, profile_solver, profile_parallel)}
    choice = argv[1] if len(argv) > 1 else "all"
    if choice not in targets:
        print(f"usage: {argv[0]} "
              "[replay|replay-streaming|serve|solver|parallel|all]",
              file=sys.stderr)
        return 2
    for fn in targets[choice]:
        fn()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
