"""Deterministic gzip segments and concatenated-stream splitting.

Alpine's apk format is three *concatenated* gzip streams (signature,
control, data).  Package hashes must be stable across rebuilds, so
compression is deterministic: fixed mtime, no filename, fixed OS byte.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import time
import zlib

from repro.util.errors import PackagingError

_GZIP_MAGIC = b"\x1f\x8b"


def gzip_compress(data: bytes, level: int = 6) -> bytes:
    """Compress with a deterministic gzip container (mtime pinned to 0)."""
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", compresslevel=level, mtime=0) as gz:
        gz.write(data)
    return buffer.getvalue()


# Compression is deterministic (pinned mtime/OS byte), so a segment whose
# uncompressed bytes are unchanged recompresses to exactly the bytes
# produced last time.  The memo keys on the input's SHA-256 instead of the
# input itself so unchanged-segment splicing (archive.apk incremental
# repack) does not pin large uncompressed tars in memory.
_COMPRESS_MEMO: dict[tuple[bytes, int, int], tuple[bytes, float]] = {}
_COMPRESS_MEMO_LIMIT = 512


def gzip_compress_cached(data: bytes, level: int = 6) -> bytes:
    """Memoized :func:`gzip_compress`; byte-identical output."""
    return gzip_compress_cached_with_cost(data, level)[0]


def gzip_compress_cached_with_cost(data: bytes,
                                   level: int = 6) -> tuple[bytes, float]:
    """Memoized compress plus the host seconds the deflate originally
    cost, so enclave-time models can charge memo hits as fresh work."""
    key = (hashlib.sha256(data).digest(), len(data), level)
    hit = _COMPRESS_MEMO.get(key)
    if hit is None:
        if len(_COMPRESS_MEMO) >= _COMPRESS_MEMO_LIMIT:
            _COMPRESS_MEMO.clear()
        started = time.perf_counter()
        compressed = gzip_compress(data, level)
        hit = (compressed, time.perf_counter() - started)
        _COMPRESS_MEMO[key] = hit
    return hit


def seed_compress_entry(key: tuple, compressed: bytes, cost: float) -> None:
    """Install a worker-computed segment into the memo (host pool).  Never
    overwrites: the first computation's recorded cost wins."""
    if key not in _COMPRESS_MEMO:
        if len(_COMPRESS_MEMO) >= _COMPRESS_MEMO_LIMIT:
            _COMPRESS_MEMO.clear()
        _COMPRESS_MEMO[key] = (compressed, cost)


def gzip_compress_batch(datas: list[bytes], level: int = 6,
                        pool=None) -> None:
    """Warm the compress memo for every payload in ``datas``, deflating
    cache misses on the worker pool.  Installed entries carry the
    worker-measured deflate cost (cost-honesty preserved)."""
    misses = []
    pending = set()
    for data in datas:
        key = (hashlib.sha256(data).digest(), len(data), level)
        if key in _COMPRESS_MEMO or key in pending:
            continue
        pending.add(key)
        misses.append((data, level))
    if not misses or pool is None:
        return
    for key, compressed, cost in pool.run_batch("gzip", misses):
        seed_compress_entry(key, compressed, cost)


def clear_compress_memo() -> None:
    """Drop the segment memo (differential tests pin cached == fresh)."""
    _COMPRESS_MEMO.clear()


def gzip_decompress(data: bytes) -> bytes:
    """Decompress a single gzip stream; rejects trailing garbage."""
    decompressor = zlib.decompressobj(wbits=31)
    try:
        out = decompressor.decompress(data)
        out += decompressor.flush()
    except zlib.error as exc:
        raise PackagingError(f"corrupt gzip stream: {exc}") from exc
    if decompressor.unused_data:
        raise PackagingError("trailing data after gzip stream")
    return out


def split_gzip_streams(data: bytes, expected: int | None = None) -> list[bytes]:
    """Split concatenated gzip streams into their compressed byte ranges.

    Returns the raw *compressed* bytes of each stream (the apk signature is
    issued over the compressed control segment, so byte ranges matter).
    """
    if not data.startswith(_GZIP_MAGIC):
        raise PackagingError("payload does not start with a gzip stream")
    streams: list[bytes] = []
    offset = 0
    while offset < len(data):
        if data[offset:offset + 2] != _GZIP_MAGIC:
            raise PackagingError(f"garbage between gzip streams at offset {offset}")
        decompressor = zlib.decompressobj(wbits=31)
        try:
            decompressor.decompress(data[offset:])
            decompressor.flush()
        except zlib.error as exc:
            raise PackagingError(f"corrupt gzip stream at offset {offset}: {exc}") from exc
        if not decompressor.eof:
            raise PackagingError(f"truncated gzip stream at offset {offset}")
        consumed = len(data) - offset - len(decompressor.unused_data)
        streams.append(data[offset:offset + consumed])
        offset += consumed
    if expected is not None and len(streams) != expected:
        raise PackagingError(
            f"expected {expected} concatenated gzip streams, found {len(streams)}"
        )
    return streams
