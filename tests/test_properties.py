"""Property-based tests on the system's core invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.gz import gzip_compress
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.core.catalog import RepositoryCatalog
from repro.core.policy import DEFAULT_INIT_CONFIG
from repro.core.sanitizer import SanitizationRejected, Sanitizer
from repro.crypto.rsa import generate_keypair
from repro.osim.fs import SimFileSystem
from repro.scripts.interpreter import Interpreter
from repro.util.errors import PackagingError, ReproError

_BUILDER_KEY = generate_keypair(1024, seed=0xF00D)
_TSR_KEY = generate_keypair(1024, seed=0xBEEF)

_NAMES = st.text(st.characters(min_codepoint=97, max_codepoint=122),
                 min_size=2, max_size=8)


class TestApkRobustness:
    """Malformed input must raise a library error, never crash oddly."""

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=60)
    def test_random_bytes_never_crash_parser(self, blob):
        try:
            ApkPackage.parse(blob)
        except ReproError:
            pass  # expected: PackagingError and friends

    @given(st.binary(min_size=1, max_size=500))
    @settings(max_examples=40)
    def test_gzip_wrapped_garbage_rejected(self, payload):
        blob = gzip_compress(payload) * 3
        try:
            ApkPackage.parse(blob)
        except ReproError:
            pass

    @given(st.integers(0, 2000))
    @settings(max_examples=25)
    def test_truncated_real_package_rejected(self, cut):
        package = ApkPackage(
            name="t", version="1-r0",
            files=[PackageFile("/usr/lib/t/x", bytes(100))],
        )
        blob = package.build(_BUILDER_KEY)
        truncated = blob[:min(cut, len(blob) - 1)]
        with pytest.raises(ReproError):
            parsed = ApkPackage.parse(truncated)
            parsed.verify([_BUILDER_KEY.public_key])


class TestIndexProperties:
    @given(st.lists(
        st.tuples(_NAMES, st.integers(1, 10**9)), min_size=1, max_size=20,
        unique_by=lambda t: t[0],
    ))
    @settings(max_examples=30)
    def test_index_roundtrip_any_entries(self, entries):
        index = RepositoryIndex(serial=3)
        for name, size in entries:
            index.add(IndexEntry(name=name, version="1.0-r0", size=size,
                                 sha256="ab" * 32))
        index.sign(_BUILDER_KEY)
        restored = RepositoryIndex.from_bytes(index.to_bytes())
        assert restored.entries == index.entries
        assert restored.verify(_BUILDER_KEY.public_key)

    @given(st.sets(_NAMES, min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_diff_is_exactly_the_changed_set(self, changed_names):
        base = RepositoryIndex(serial=1)
        for i in range(5):
            base.add(IndexEntry(name=f"stable{i}", version="1-r0", size=10,
                                sha256="aa" * 32))
        newer = base.copy()
        newer.serial = 2
        for name in changed_names:
            newer.add(IndexEntry(name=f"chg-{name}", version="2-r0", size=11,
                                 sha256="bb" * 32))
        diff = {e.name for e in newer.diff_updated(base)}
        assert diff == {f"chg-{name}" for name in changed_names}


def _sanitizer_for(catalog: RepositoryCatalog) -> Sanitizer:
    return Sanitizer(
        signing_key=_TSR_KEY,
        trusted_signers=[_BUILDER_KEY.public_key],
        catalog=catalog,
        init_config=dict(DEFAULT_INIT_CONFIG),
    )


class TestDeterminismProperty:
    """The paper's core invariant, as a property: for ANY set of services
    and ANY execution order, sanitized scripts converge /etc files to the
    predicted contents."""

    @given(st.lists(_NAMES, min_size=1, max_size=6, unique=True),
           st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_any_service_set_any_order_converges(self, services, rng):
        catalog = RepositoryCatalog()
        packages = []
        for name in services:
            package = ApkPackage(
                name=f"pkg-{name}", version="1-r0",
                scripts={".pre-install": f"adduser -S svc-{name}\n"},
                files=[PackageFile(f"/usr/lib/{name}.so", b"x")],
            )
            catalog.scan_package(package)
            packages.append(package)
        sanitizer = _sanitizer_for(catalog)
        predicted = sanitizer.predicted_config

        results = []
        for package in packages:
            blob = package.build(_BUILDER_KEY)
            results.append(sanitizer.sanitize_blob(blob))

        # Execute a random subset in a random order.
        subset = [r for r in results if rng.random() < 0.7] or results
        rng.shuffle(subset)
        fs = SimFileSystem()
        for path, content in DEFAULT_INIT_CONFIG.items():
            fs.write_file(path, content.encode())
        interpreter = Interpreter(fs)
        for result in subset:
            interpreter.run(result.package.scripts[".pre-install"])
        for path in ("/etc/passwd", "/etc/shadow", "/etc/group"):
            assert fs.read_file(path).decode() == predicted[path]

    @given(_NAMES)
    @settings(max_examples=20, deadline=None)
    def test_sanitized_output_deterministic(self, name):
        catalog = RepositoryCatalog()
        package = ApkPackage(
            name=name, version="1-r0",
            scripts={".post-install": f"mkdir -p /var/lib/{name}\n"},
            files=[PackageFile(f"/usr/lib/{name}.so", name.encode() * 10)],
        )
        catalog.scan_package(package)
        sanitizer = _sanitizer_for(catalog)
        blob = package.build(_BUILDER_KEY)
        assert sanitizer.sanitize_blob(blob).blob == \
            sanitizer.sanitize_blob(blob).blob


class TestSanitizerTotality:
    """Every package is either sanitized or explicitly rejected — no third
    outcome, and rejection happens only for genuinely unsafe scripts."""

    @given(st.sampled_from([
        "mkdir -p /var/lib/x\n",
        "true\n",
        "grep -q root /etc/passwd\n",
        "adduser -S someone\n",
        "touch /var/run/x.pid\n",
        "add-shell /bin/x\n",
        "echo conf >> /etc/x.conf\n",
        "sed -i s/a/b/ /etc/x.conf\n",
    ]))
    @settings(max_examples=30, deadline=None)
    def test_sanitize_or_reject(self, script):
        catalog = RepositoryCatalog()
        package = ApkPackage(name="p", version="1-r0",
                             scripts={".post-install": script},
                             files=[PackageFile("/usr/lib/p.so", b"x")])
        catalog.scan_package(package)
        sanitizer = _sanitizer_for(catalog)
        blob = package.build(_BUILDER_KEY)
        unsafe_unsupported = ("add-shell" in script or ">>" in script
                              or "sed -i" in script)
        if unsafe_unsupported:
            with pytest.raises(SanitizationRejected):
                sanitizer.sanitize_blob(blob)
        else:
            result = sanitizer.sanitize_blob(blob)
            assert result.package.files[0].ima_signature is not None


class TestQuorumSafetyProperty:
    """For any adversary subset of size <= f among 2f+1 mirrors, the quorum
    accepts the honest (latest) index."""

    @given(st.integers(0, 2), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_f_bounded_adversary_never_wins(self, bad_count, seed):
        from repro.archive.apk import ApkPackage as Pkg
        from repro.core.policy import MirrorPolicyEntry
        from repro.core.quorum import QuorumReader
        from repro.mirrors.builder import MirrorSpec, build_mirror_network
        from repro.mirrors.mirror import MirrorBehavior
        from repro.mirrors.repository import OriginalRepository
        from repro.simnet.latency import Continent
        from repro.simnet.network import Host, Network

        origin = OriginalRepository(_BUILDER_KEY)
        origin.publish(Pkg(name="a", version="1-r0"))
        stale = origin.serial
        origin.publish(Pkg(name="a", version="2-r0"))

        rng = random.Random(seed)
        behaviors = ([MirrorBehavior.FREEZE] * bad_count
                     + [MirrorBehavior.HONEST] * (5 - bad_count))
        rng.shuffle(behaviors)
        network = Network()
        network.add_host(Host("tsr", Continent.EUROPE))
        specs = [
            MirrorSpec(
                f"m{i}", Continent.EUROPE, behavior=behavior,
                pinned_serial=stale if behavior is MirrorBehavior.FREEZE
                else None,
            )
            for i, behavior in enumerate(behaviors)
        ]
        build_mirror_network(origin, specs, network)
        reader = QuorumReader(
            network, "tsr",
            [MirrorPolicyEntry(hostname=s.name) for s in specs],
            [_BUILDER_KEY.public_key],
        )
        result = reader.read_index()
        assert result.index.serial == origin.serial
