"""TSR — the Trusted Software Repository (the paper's contribution).

A shielded proxy between package managers and community repositories:

* :mod:`repro.core.policy` — per-client security policies (Listing 1),
* :mod:`repro.core.quorum` — 2f+1 mirror agreement on the metadata index,
* :mod:`repro.core.catalog` — repository-wide user/group discovery,
* :mod:`repro.core.sanitizer` — package sanitization (section 4.2 / 5.3),
* :mod:`repro.core.cache` / :mod:`repro.core.freshness` — untrusted-disk
  cache with sealed, monotonic-counter-protected freshness (section 5.5),
* :mod:`repro.core.program` — the code that runs *inside* the enclave,
* :mod:`repro.core.service` — the host-side service + network endpoint,
* :mod:`repro.core.pipeline` — the overlapped (pipelined) refresh engine,
* :mod:`repro.core.client` — the package-manager-facing repository client.
"""

from repro.core.policy import SecurityPolicy, MirrorPolicyEntry
from repro.core.quorum import QuorumReader, QuorumResult
from repro.core.catalog import RepositoryCatalog
from repro.core.pipeline import PipelineOutcome, RefreshPipeline
from repro.core.sanitizer import Sanitizer, SanitizationResult, SanitizationRejected
from repro.core.service import RefreshReport, TrustedSoftwareRepository
from repro.core.client import TsrRepositoryClient, MirrorRepositoryClient

__all__ = [
    "SecurityPolicy",
    "MirrorPolicyEntry",
    "QuorumReader",
    "QuorumResult",
    "RepositoryCatalog",
    "PipelineOutcome",
    "RefreshPipeline",
    "Sanitizer",
    "SanitizationResult",
    "SanitizationRejected",
    "RefreshReport",
    "TrustedSoftwareRepository",
    "TsrRepositoryClient",
    "MirrorRepositoryClient",
]
