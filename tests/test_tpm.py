"""Tests for the software TPM."""

import pytest

from repro.crypto.hashes import sha256_bytes
from repro.tpm.device import (
    IMA_PCR_INDEX,
    PcrBank,
    Tpm,
    TpmError,
    verify_quote,
)
from repro.util.errors import AttestationError


@pytest.fixture(scope="module")
def tpm():
    return Tpm("tpm-test", key_bits=512)


class TestPcrBank:
    def test_initial_zero(self):
        bank = PcrBank()
        assert bank.read(0) == bytes(32)

    def test_extend_is_hash_chain(self):
        bank = PcrBank()
        digest = sha256_bytes(b"event")
        value = bank.extend(7, digest)
        assert value == sha256_bytes(bytes(32) + digest)

    def test_extend_order_matters(self):
        a, b = PcrBank(), PcrBank()
        d1, d2 = sha256_bytes(b"1"), sha256_bytes(b"2")
        a.extend(0, d1)
        a.extend(0, d2)
        b.extend(0, d2)
        b.extend(0, d1)
        assert a.read(0) != b.read(0)

    def test_bad_index_rejected(self):
        with pytest.raises(TpmError):
            PcrBank().read(24)
        with pytest.raises(TpmError):
            PcrBank().extend(-1, bytes(32))

    def test_bad_digest_size_rejected(self):
        with pytest.raises(TpmError):
            PcrBank().extend(0, b"short")


class TestEventLog:
    def test_measure_appends_log(self):
        tpm = Tpm("tpm-log", key_bits=512)
        tpm.measure(0, b"firmware", "firmware")
        tpm.measure(4, b"kernel", "kernel")
        assert [e.description for e in tpm.event_log] == ["firmware", "kernel"]
        assert tpm.event_log[0].digest == sha256_bytes(b"firmware")

    def test_log_replays_to_pcr(self):
        tpm = Tpm("tpm-replay", key_bits=512)
        for blob in (b"a", b"b", b"c"):
            tpm.measure(IMA_PCR_INDEX, blob)
        replayed = bytes(32)
        for entry in tpm.event_log:
            replayed = sha256_bytes(replayed + entry.digest)
        assert replayed == tpm.pcr_bank.read(IMA_PCR_INDEX)


class TestQuote:
    def test_quote_verifies(self, tpm):
        tpm.measure(0, b"component")
        quote = tpm.quote([0, 10], nonce=b"fresh-nonce")
        values = verify_quote(quote, tpm.attestation_public_key, b"fresh-nonce")
        assert values[0] == tpm.pcr_bank.read(0)

    def test_wrong_nonce_rejected(self, tpm):
        quote = tpm.quote([0], nonce=b"nonce-a")
        with pytest.raises(AttestationError):
            verify_quote(quote, tpm.attestation_public_key, b"nonce-b")

    def test_wrong_key_rejected(self, tpm):
        other = Tpm("tpm-other", key_bits=512)
        quote = tpm.quote([0], nonce=b"n")
        with pytest.raises(AttestationError):
            verify_quote(quote, other.attestation_public_key, b"n")

    def test_tampered_pcr_value_rejected(self, tpm):
        quote = tpm.quote([0], nonce=b"n2")
        quote.pcr_values[0] = bytes(32)  # claim a clean PCR
        with pytest.raises(AttestationError):
            verify_quote(quote, tpm.attestation_public_key, b"n2")

    def test_deterministic_ak_per_serial(self):
        assert (
            Tpm("same", key_bits=512).attestation_public_key
            == Tpm("same", key_bits=512).attestation_public_key
        )
        assert (
            Tpm("one", key_bits=512).attestation_public_key
            != Tpm("two", key_bits=512).attestation_public_key
        )


class TestCounters:
    def test_counter_lifecycle(self):
        tpm = Tpm("tpm-ctr", key_bits=512)
        assert tpm.create_counter("tsr") == 0
        assert tpm.increment_counter("tsr") == 1
        assert tpm.increment_counter("tsr") == 2
        assert tpm.read_counter("tsr") == 2

    def test_duplicate_create_rejected(self):
        tpm = Tpm("tpm-ctr2", key_bits=512)
        tpm.create_counter("c")
        with pytest.raises(TpmError):
            tpm.create_counter("c")

    def test_unknown_counter_rejected(self):
        tpm = Tpm("tpm-ctr3", key_bits=512)
        with pytest.raises(TpmError):
            tpm.increment_counter("nope")
        with pytest.raises(TpmError):
            tpm.read_counter("nope")


class TestNvStorage:
    def test_write_read(self):
        tpm = Tpm("tpm-nv", key_bits=512)
        tpm.nv_write("sealed", b"\x01\x02")
        assert tpm.nv_read("sealed") == b"\x01\x02"

    def test_missing_read_rejected(self):
        with pytest.raises(TpmError):
            Tpm("tpm-nv2", key_bits=512).nv_read("nothing")
