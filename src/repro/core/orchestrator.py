"""Multi-tenant refresh orchestration: one plan, one enclave, N tenants.

A TSR hosts many tenant repositories behind one enclave (paper section
5.2), but the refresh path used to be strictly single-repo and strictly
phased: a TSR serving N tenants ran N full quorum → download → catalog →
sanitize sequences back to back, re-downloading and re-analyzing identical
upstream packages once per tenant and idling the network whenever the
enclave worked.  :class:`RefreshOrchestrator` schedules the refreshes of
*multiple* repositories as one plan on a single
:class:`repro.simnet.schedule.ParallelTransferSchedule` timeline:

* **interleaved quorums** — every tenant's first quorum wave starts at
  plan time zero; extension reads compose onto the shared timeline, and
  all index transfers share the TSR downlink with exact max-min
  accounting.  The widening loop and the ``evaluate_quorum`` ecalls are
  the same as the phased path's, fed the same responses in the same
  order, so *verdicts are identical* — only the clock accounting differs.
* **quorum/download interleaving** — while a tenant's quorum is still
  widening, package downloads start for index entries already agreed by
  f+1 signature-valid responses (:func:`repro.core.quorum.entry_agreement`
  proves such entries must appear in any eventual winning index).  The
  refresh head no longer serializes behind the slowest mirror's answer.
* **cross-tenant download dedupe** — blobs are content-addressed in the
  :class:`repro.core.cache.PackageCache`: when two tenants' quorum
  indexes pin the same upstream blob, the second tenant rides the first
  tenant's in-flight transfer (or the content store) instead of opening
  its own, with per-tenant accounting preserved in each
  :class:`repro.core.service.RefreshReport`.
* **cross-tenant scan/analysis dedupe** — inside a
  ``begin_shared_refresh`` window the enclave memoizes the
  content-determined halves of catalog scanning and sanitization
  (:mod:`repro.core.program`); the per-repository halves (catalog delta
  replay, prelude splicing, signing, repacking) always run per tenant,
  so sanitized outputs stay byte-identical to N separate phased
  refreshes.
* **the enclave as the shared serial resource** — sanitize jobs from all
  tenants queue on one serial enclave channel, FIFO by blob readiness,
  with per-tenant catalog barriers; the recorded ``enclave_timeline``
  exposes the serialization for tests.

The differential property the tests pin: for identically built
deployments, an orchestrated multi-tenant refresh produces byte-identical
sanitized indexes and packages, and identical quorum verdicts, to running
the N phased refreshes serially — while finishing in a fraction of the
simulated wall-clock (`benchmarks/bench_multi_tenant_refresh.py`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.archive.index import RepositoryIndex, parse_index_cached
from repro.core.pipeline import MirrorDownloadScheduler
from repro.core.quorum import entry_agreement
from repro.core.sanitizer import SanitizationRejected, SanitizationResult
from repro.core.service import RefreshReport, matches_expected
from repro.simnet.latency import (
    LOCAL_DISK_BANDWIDTH_BYTES_PER_S,
    LOCAL_DISK_SEEK_S,
)
from repro.simnet.network import Request
from repro.util.errors import NetworkError, QuorumError


@dataclass
class MultiTenantRefreshReport:
    """One orchestrated (or phased-serial baseline) multi-tenant refresh."""

    #: repo_id -> that tenant's refresh report.
    reports: dict[str, RefreshReport]
    #: Simulated wall-clock of the whole plan (relative to its origin).
    wall_elapsed: float
    orchestrated: bool = True
    #: (repo_id, package, start, finish) of every sanitize job on the
    #: serial enclave channel, in execution order.
    enclave_timeline: list[tuple[str, str, float, float]] = \
        field(default_factory=list)
    #: Enclave memo counters from ``end_shared_refresh``.
    memo_stats: dict = field(default_factory=dict)
    #: Plan-time offset this round started at (multi-round plans place
    #: successive rounds at their trace instants; standalone runs at 0).
    origin: float = 0.0
    #: Absolute plan-time offset the round's last activity ended at.
    finished_at: float = 0.0

    @property
    def phase_sum(self) -> float:
        """Resource-seconds across all tenants (ignores any overlap)."""
        return sum(r.phase_sum for r in self.reports.values())

    @property
    def downloads_deduped(self) -> int:
        return sum(r.deduped_downloads for r in self.reports.values())

    @property
    def dedupe_bytes_saved(self) -> int:
        return sum(r.deduped_download_bytes for r in self.reports.values())

    @property
    def scans_deduped(self) -> int:
        return sum(r.deduped_scans for r in self.reports.values())

    @property
    def sanitize_shared(self) -> int:
        return sum(r.shared_sanitize for r in self.reports.values())

    @property
    def interleaved_downloads(self) -> int:
        return sum(r.interleaved_downloads for r in self.reports.values())

    @property
    def evicted_redownloads(self) -> int:
        return sum(r.evicted_redownloads for r in self.reports.values())

    @property
    def prescans(self) -> int:
        return sum(r.prescanned for r in self.reports.values())

    @property
    def sanitized(self) -> int:
        return sum(r.sanitized for r in self.reports.values())

    @property
    def resanitize_wait_s(self) -> float:
        return sum(r.resanitize_wait_s for r in self.reports.values())

    @property
    def downloaded_bytes(self) -> int:
        return sum(r.downloaded_bytes for r in self.reports.values())


@dataclass
class RefreshPlanState:
    """Cross-round state of a resumable refresh plan.

    A multi-round driver (the trace replay engine,
    :mod:`repro.workload.replay`) creates one of these and passes it to
    every :class:`RefreshOrchestrator` round: successive rounds then
    *extend* the same :class:`~repro.core.pipeline.MirrorDownloadScheduler`
    schedule (per-mirror channels stay serialized across rounds), see the
    same in-flight transfer table (a later round rides an earlier round's
    still-moving blob), and queue behind the same enclave and cache-shard
    frontiers — instead of every round being rebuilt from a cold, empty
    plan at time zero.
    """

    #: Shared download scheduler; created by the first round that runs.
    scheduler: object | None = None
    #: Cache shard -> busy-until, carried across rounds.
    shard_free: dict[int, float] = field(default_factory=dict)
    #: The serial enclave channel's busy-until, carried across rounds.
    enclave_free: float = 0.0
    #: sha256 -> _Source of the transfers currently moving.  Spans the
    #: tenants of one round and is cleared when the round resolves:
    #: cross-round reuse must flow through the content-addressed cache,
    #: which owns eviction — a long-gone transfer must never serve bytes
    #: the cache has since evicted.
    inflight: dict[str, "_Source"] = field(default_factory=dict)
    #: Index-wave channel sequence (keeps channels unique across rounds).
    idx_seq: int = 0
    #: Concatenated enclave timeline of all rounds.
    timeline: list[tuple[str, str, float, float]] = field(default_factory=list)
    #: Streaming replays set this False: the concatenated timeline is a
    #: debugging artifact that grows O(trace), and nothing in the
    #: streaming path reads it.  (Per-round timelines on each report are
    #: unaffected.)
    keep_timeline: bool = True
    rounds: int = 0
    #: Keep the enclave's shared-refresh memos alive across rounds: each
    #: round bumps the window's generation instead of discarding it, so
    #: steady-state rounds replay unchanged blobs' analyses (charged at
    #: their originally recorded costs — simulated time and per-round
    #: dedupe accounting are unchanged) instead of re-parsing them.  The
    #: driver that sets this owns closing the window when the plan ends.
    persistent_enclave_memo: bool = False


@dataclass(eq=False)
class _Source:
    """One in-flight transfer other acquisitions may ride."""

    batch: object  # DownloadBatch
    name: str
    owner: str     # repo_id that pays for the transfer
    optimistic: bool = False


@dataclass(eq=False)
class _SanJob:
    """One (repo, package) travelling to the enclave channel."""

    name: str
    blob: bytes
    ready: float
    needs_catalog: bool = False


@dataclass(eq=False)
class _TenantPlan:
    """Per-repository progress through the orchestrated plan."""

    index: int
    repo_id: str
    config: object  # RepoConfig
    ordered: list[dict]
    fanout: list[dict]
    needed: int
    #: Quorum state — mirrors the phased widening loop exactly.
    responses: list[tuple[str, bytes]] = field(default_factory=list)
    valid_indexes: list[RepositoryIndex] = field(default_factory=list)
    frontier: float = 0.0
    cursor: int = 0
    quorum: dict | None = None
    quorum_elapsed: float = 0.0
    optimistic_names: set[str] = field(default_factory=set)
    #: package -> acquisition: ("blob", bytes, ready) | ("src", _Source).
    acquire: dict[str, tuple] = field(default_factory=dict)
    jobs: dict[str, _SanJob] = field(default_factory=dict)
    barrier: float = 0.0
    end: float = 0.0
    catalog_info: dict | None = None
    #: Accounting (lands in this tenant's RefreshReport).
    downloaded_bytes: int = 0
    download_elapsed: float = 0.0
    sanitize_elapsed: float = 0.0
    deduped_downloads: int = 0
    deduped_download_bytes: int = 0
    deduped_scans: int = 0
    shared_sanitize: int = 0
    interleaved_downloads: int = 0
    evicted_redownloads: int = 0
    prescanned: int = 0
    sanitized_early: int = 0
    rejected: list[tuple[str, str]] = field(default_factory=list)
    results: list[SanitizationResult] = field(default_factory=list)
    mirror_assignments: dict[str, str] = field(default_factory=dict)


class RefreshOrchestrator:
    """Plans and executes one multi-tenant refresh on a shared timeline."""

    def __init__(self, service, repo_ids: list[str],
                 max_streams: int | None = None, interleave: bool = True,
                 origin: float = 0.0,
                 plan_state: RefreshPlanState | None = None,
                 advance_clock: bool | None = None):
        if not repo_ids:
            raise ValueError("orchestrator needs at least one repository")
        if len(set(repo_ids)) != len(repo_ids):
            raise ValueError(f"duplicate repository ids: {repo_ids}")
        if max_streams is not None and max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        if origin < 0:
            raise ValueError(f"plan origin must be >= 0: {origin}")
        self._service = service
        self._network = service._network
        self._interleave = interleave
        #: Plan-time offset this round's first quorum waves start at.
        self._origin = origin
        self._plan_state = plan_state
        #: Standalone rounds advance the clock by their own makespan; a
        #: multi-round driver owns the clock and advances it once at the
        #: end of the whole trace.
        self._advance_clock = (advance_clock if advance_clock is not None
                               else plan_state is None)
        self._plans: list[_TenantPlan] = []
        for index, repo_id in enumerate(repo_ids):
            config = service.repo_config(repo_id)
            ordered = [dict(m) for m in config.ordered_mirrors]
            streams = len(ordered)
            if max_streams is not None:
                streams = min(streams, max_streams)
            self._plans.append(_TenantPlan(
                index=index,
                repo_id=repo_id,
                config=config,
                ordered=ordered,
                fanout=ordered[:streams],
                needed=config.quorum_needed,
                frontier=origin,
            ))
        state = plan_state or RefreshPlanState()
        #: sha256 -> _Source for every transfer issued by this plan.
        self._inflight: dict[str, _Source] = state.inflight
        #: Cache shard -> busy-until (shared across all tenants' disk I/O).
        self._shard_free: dict[int, float] = state.shard_free
        self._timeline: list[tuple[str, str, float, float]] = []
        self._idx_seq = state.idx_seq
        #: Enclave busy-until while pre-scans run during quorum widening.
        self._enclave_busy = state.enclave_free
        self._prescanned: set[str] = set()
        #: repo_id -> summed (finish - queued_at) of the serving-induced
        #: re-sanitize jobs this round drained for that repository.
        self._resanitize_waits: dict[str, float] = {}
        #: Batches issued by THIS round.  On a shared multi-round
        #: scheduler, materialization must never walk earlier rounds'
        #: dead batches — that would resurrect blobs the cache has since
        #: evicted (and grow each round's work with plan length).
        self._round_batches: list = []

    # -- public entry -------------------------------------------------------

    def run(self) -> MultiTenantRefreshReport:
        """Execute the whole plan; advances the clock by its makespan
        (standalone rounds only — plan-state rounds leave the clock to
        the multi-round driver)."""
        state = self._plan_state
        if state is not None and state.scheduler is not None:
            scheduler = state.scheduler
        else:
            scheduler = MirrorDownloadScheduler(
                self._service, channel_key=lambda hostname: ("dl", hostname))
            if state is not None:
                state.scheduler = scheduler
        self._resanitize_phase()
        enclave = self._service._enclave
        keep_memo = state is not None and state.persistent_enclave_memo
        enclave.ecall("begin_shared_refresh", keep_memo)
        try:
            self._quorum_phase(scheduler)
            self._download_phase(scheduler)
            self._prewarm_phase()
            self._scan_phase()
            enclave_free = self._sanitize_phase()
        finally:
            memo_stats = enclave.ecall("end_shared_refresh", keep_memo)
        for plan in self._plans:
            if plan.catalog_info is None:
                plan.catalog_info = enclave.ecall("finish_catalog",
                                                  plan.repo_id)
            index_bytes = enclave.ecall("finalize_index", plan.repo_id)
            del index_bytes  # published on demand via get_index
        self._service._seal_state()

        makespan = max([
            self._origin,
            enclave_free,
            *(plan.end for plan in self._plans),
            *self._shard_free.values(),
        ])
        if state is not None:
            state.enclave_free = enclave_free
            state.idx_seq = self._idx_seq
            if state.keep_timeline:
                state.timeline.extend(self._timeline)
            state.rounds += 1
        # Every batch resolved: later rounds read landed blobs from the
        # content store (eviction-aware), not from dead _Source records.
        self._inflight.clear()
        # This round has consumed its download results; freeze its
        # batches so cross-round schedulers stop recomputing them (and,
        # on a streaming schedule, can retire their keys once drained).
        scheduler.settle_round()
        if self._advance_clock:
            self._network.clock.advance(makespan - self._origin)
        reports = {
            plan.repo_id: self._report_for(plan) for plan in self._plans
        }
        return MultiTenantRefreshReport(
            reports=reports,
            wall_elapsed=makespan - self._origin,
            orchestrated=True,
            enclave_timeline=list(self._timeline),
            memo_stats=memo_stats,
            origin=self._origin,
            finished_at=makespan,
        )

    # -- serving-induced re-sanitize queue ----------------------------------

    def _resanitize_phase(self):
        """Drain the primary's re-sanitize queue ahead of this round.

        Evicted-blob serves since the last round queued real enclave
        work (:meth:`TrustedSoftwareRepository.take_resanitize_jobs`);
        it runs FIFO on the same serial enclave channel the round's
        refresh sanitize jobs are about to queue on, so serving load
        couples directly into refresh wall-clock.  No enclave ecall is
        issued — the sanitized bytes are already pinned by the signed
        publication; only the simulated enclave occupancy and the disk
        write restoring the cached copy are charged.
        """
        service = self._service
        cache = service.cache
        for job in service.take_resanitize_jobs():
            start = max(self._enclave_busy, self._origin, job.queued_at)
            finish = start + job.duration
            self._enclave_busy = finish
            service.complete_resanitize(job)
            self._charge_shard(cache.shard_index(job.repo_id, job.name),
                               job.size_bytes, finish)
            self._timeline.append((job.repo_id, f"resanitize:{job.name}",
                                   start, finish))
            self._resanitize_waits[job.repo_id] = \
                self._resanitize_waits.get(job.repo_id, 0.0) \
                + (finish - job.queued_at)

    # -- quorum phase -------------------------------------------------------

    def _issue_index_wave(self, plan: _TenantPlan, mirrors: list[dict],
                          start_at: float, scheduler) -> list[tuple]:
        """Probe index reads and place them on the shared timeline.

        Each request gets its own schedule channel (independent
        connections, as in the phased ``gather``); ``start_at`` delays the
        setup phase so extension reads begin at the frontier that
        triggered them.
        """
        issued = []
        for mirror in mirrors:
            self._idx_seq += 1
            channel = ("idx", self._idx_seq)
            key = ("idx", plan.repo_id, self._idx_seq)
            try:
                probe = self._network.probe(
                    self._service.hostname,
                    Request(mirror["hostname"], "get_index"),
                )
            except NetworkError:
                issued.append((mirror, None, None))
                continue
            scheduler.schedule.enqueue(channel, key, start_at + probe.setup,
                                       probe.size_bytes, probe.bandwidth)
            issued.append((mirror, key, probe.payload))
        return issued

    def _host_validate(self, plan: _TenantPlan, payload: object):
        """Host-side parse + signature check, for optimistic vote counting.

        Only signature-valid indexes vote (the enclave applies the same
        check in ``evaluate_quorum``), which keeps the entry-agreement
        pigeonhole argument sound and stops a forged response from
        triggering downloads of fabricated entries.
        """
        if not isinstance(payload, (bytes, bytearray)):
            return
        try:
            index = parse_index_cached(bytes(payload))
        except Exception:
            return
        if any(index.verify(key) for key in plan.config.policy.signers_keys):
            plan.valid_indexes.append(index)

    def _quorum_phase(self, scheduler):
        """All tenants' widening loops, interleaved on one timeline."""
        waves: dict[_TenantPlan, list[tuple]] = {}
        for plan in self._plans:
            first = plan.ordered[:plan.needed]
            plan.cursor = len(first)
            waves[plan] = self._issue_index_wave(plan, first, self._origin,
                                                 scheduler)
        active = list(self._plans)
        while active:
            timings = scheduler.schedule.solve()
            next_waves: dict[_TenantPlan, list[tuple]] = {}
            for plan in list(active):
                wave = waves[plan]
                finishes = [timings[key].finish
                            for _, key, _ in wave if key is not None]
                plan.frontier = (max(finishes) if finishes
                                 else plan.frontier + self._network.timeout)
                for mirror, key, payload in wave:
                    if key is None:
                        continue
                    plan.responses.append((mirror["hostname"], payload))
                    self._host_validate(plan, payload)
                try:
                    plan.quorum = self._service._enclave.ecall(
                        "evaluate_quorum", plan.repo_id, plan.responses)
                    plan.quorum_elapsed = plan.frontier
                    plan.end = plan.frontier
                    active.remove(plan)
                    continue
                except QuorumError:
                    if plan.cursor >= len(plan.ordered):
                        raise
                if self._interleave:
                    self._launch_optimistic(plan, scheduler)
                next_waves[plan] = self._issue_index_wave(
                    plan, [plan.ordered[plan.cursor]], plan.frontier,
                    scheduler)
                plan.cursor += 1
            waves = next_waves

    def _launch_optimistic(self, plan: _TenantPlan, scheduler):
        """Start downloads for entries the partial quorum already pins.

        Entries whose blob is *already local* need no transfer; instead
        their content-determined analysis is pre-scanned on the enclave
        while the quorum keeps widening (zero network), so incremental
        rounds hit a warm memo when the sanitize phase opens.
        """
        cache = self._service.cache
        agreed = entry_agreement(plan.valid_indexes, plan.needed)
        names: list[str] = []
        expected: dict[str, dict] = {}
        for name in sorted(agreed):
            entry = agreed[name]
            sha = entry["sha256"]
            if not plan.config.policy.allows_package(name):
                continue
            if name in plan.optimistic_names or sha in self._inflight:
                continue
            if cache.has_content(sha):
                blob = cache.get_content(sha)
                if blob is not None and matches_expected(blob, entry):
                    self._prescan(plan, sha, blob,
                                  cache.content_shard_index(sha))
                continue
            # A named original only satisfies the entry when it matches
            # the *agreed* hash — a stale cached version of an updated
            # package must not suppress its interleaved download.
            cached = cache.get_original(plan.repo_id, name)
            if cached is not None and matches_expected(cached, entry):
                self._prescan(plan, sha, cached,
                              cache.shard_index(plan.repo_id, name))
                continue
            names.append(name)
            expected[name] = dict(entry)
        if not names:
            return
        batch = scheduler.add_batch(
            names, expected, mirrors=list(plan.ordered),
            fanout=plan.fanout, not_before=plan.frontier, best_effort=True)
        self._round_batches.append(batch)
        for name in names:
            self._inflight[expected[name]["sha256"]] = _Source(
                batch=batch, name=name, owner=plan.repo_id, optimistic=True)
            plan.optimistic_names.add(name)
        plan.interleaved_downloads += len(names)

    def _prescan(self, plan: _TenantPlan, sha: str, blob: bytes, shard: int):
        """Warm the enclave's shared analysis memo for one cached blob.

        Runs during quorum widening, so the analysis cost is paid on the
        otherwise-idle enclave ahead of the sanitize phase; sanitizing the
        same blob later replays the memo (:meth:`TsrProgram.analyze_blob`
        cannot change verdicts or bytes — only the schedule).
        """
        if sha in self._prescanned:
            return
        self._prescanned.add(sha)
        info = self._service._enclave.ecall("analyze_blob", plan.repo_id,
                                            blob)
        plan.prescanned += 1
        if info["deduped"]:
            return
        # Disk read off the blob's shard, then the serial enclave channel.
        ready = self._charge_shard(shard, len(blob), plan.frontier)
        duration = self._service.epc_model.simulated_duration(
            info["native"], info["working_set"]
        ) if self._service.sgx_enabled else info["native"]
        self._enclave_busy = max(self._enclave_busy, ready) + duration

    # -- download phase -----------------------------------------------------

    def _download_phase(self, scheduler):
        """Per-tenant batches, deduped by content, on the shared schedule."""
        cache = self._service.cache
        order = sorted(self._plans,
                       key=lambda p: (p.quorum_elapsed, p.index))
        for plan in order:
            expected = plan.quorum["expected"]
            to_fetch: list[str] = []
            for name in plan.quorum["changed"]:
                want = expected[name]
                sha = want["sha256"]
                blob, hit, evicted = cache.lookup_blob(plan.repo_id, name,
                                                       want)
                if blob is not None:
                    if hit == "named":
                        shard = cache.shard_index(plan.repo_id, name)
                    else:
                        shard = cache.content_shard_index(sha)
                        plan.deduped_downloads += 1
                        plan.deduped_download_bytes += len(blob)
                    ready = self._charge_shard(shard, len(blob),
                                               plan.quorum_elapsed)
                    plan.acquire[name] = ("blob", blob, ready)
                    continue
                source = self._inflight.get(sha)
                if source is not None:
                    plan.acquire[name] = ("src", source)
                    continue
                if evicted:
                    plan.evicted_redownloads += 1
                to_fetch.append(name)
            if to_fetch:
                batch = scheduler.add_batch(
                    to_fetch, {n: expected[n] for n in to_fetch},
                    mirrors=list(plan.ordered), fanout=plan.fanout,
                    not_before=plan.quorum_elapsed)
                self._round_batches.append(batch)
                for name in to_fetch:
                    source = _Source(batch=batch, name=name,
                                     owner=plan.repo_id)
                    self._inflight[expected[name]["sha256"]] = source
                    plan.acquire[name] = ("src", source)
        scheduler.resolve()
        self._refetch_failed(scheduler)
        self._materialize(scheduler)

    def _refetch_failed(self, scheduler):
        """Re-issue needed packages whose best-effort fetch failed.

        An optimistic transfer may exhaust its mirrors without raising
        (``best_effort``); a tenant that depended on it falls back to a
        normal batch here.  Starts after the current schedule drains (the
        failure was detected no earlier), and the replacement batch is
        *not* best-effort, so genuine unavailability still raises as in
        the phased path.
        """
        while True:
            missing: dict[_TenantPlan, list[str]] = {}
            for plan in self._plans:
                for name, acq in plan.acquire.items():
                    if acq[0] != "src":
                        continue
                    source = acq[1]
                    if source.name not in source.batch.fetched:
                        missing.setdefault(plan, []).append(name)
            if not missing:
                return
            frees = scheduler.channel_frees()
            detect = max(frees.values(), default=0.0)
            for plan, names in missing.items():
                expected = plan.quorum["expected"]
                batch = scheduler.add_batch(
                    names, {n: expected[n] for n in names},
                    mirrors=list(plan.ordered), fanout=plan.fanout,
                    not_before=detect)
                self._round_batches.append(batch)
                for name in names:
                    source = _Source(batch=batch, name=name,
                                     owner=plan.repo_id)
                    self._inflight[expected[name]["sha256"]] = source
                    plan.acquire[name] = ("src", source)
            scheduler.resolve()

    def _materialize(self, scheduler):
        """Turn resolved acquisitions into sanitize jobs + accounting."""
        cache = self._service.cache
        # Every blob fetched by THIS round enters the content-addressed
        # store once, charged to its landing shard as it completes.  On a
        # shared multi-round scheduler, earlier rounds' batches are dead:
        # walking them would resurrect blobs the cache evicted since.
        written: set[str] = set()
        for batch in self._round_batches:
            for name, blob in batch.fetched.items():
                sha = batch.expected[name]["sha256"]
                if sha in written or cache.has_content(sha):
                    continue
                cache.put_content(blob, sha)
                self._charge_shard(cache.content_shard_index(sha),
                                   len(blob), batch.finishes[name])
                written.add(sha)

        for plan in self._plans:
            for name in plan.quorum["changed"]:
                acq = plan.acquire[name]
                if acq[0] == "blob":
                    _, blob, ready = acq
                else:
                    source = acq[1]
                    blob = source.batch.fetched[source.name]
                    finish = source.batch.finishes[source.name]
                    if source.owner == plan.repo_id:
                        plan.downloaded_bytes += len(blob)
                        plan.download_elapsed += \
                            source.batch.durations[source.name]
                        plan.mirror_assignments[name] = \
                            source.batch.assignments[source.name]
                        # An optimistic blob may land before its quorum
                        # completes; the enclave only verifies it against
                        # an *accepted* index, so it queues no earlier.
                        ready = max(finish, plan.quorum_elapsed)
                    else:
                        # Another tenant paid for the transfer; this one
                        # reads the landed blob off the content shard.
                        plan.deduped_downloads += 1
                        plan.deduped_download_bytes += len(blob)
                        sha = plan.quorum["expected"][name]["sha256"]
                        ready = self._charge_shard(
                            cache.content_shard_index(sha), len(blob),
                            max(finish, plan.quorum_elapsed))
                plan.jobs[name] = _SanJob(name=name, blob=blob, ready=ready)

    # -- scan + sanitize phases ---------------------------------------------

    def _prewarm_phase(self):
        """Fan the round's known sanitize work out to the host pool.

        Every changed blob is downloaded by now, so the round's sanitize
        work-list is fully known before the serial scan/sanitize timeline
        starts.  With a worker pool configured (``REPRO_WORKERS``), the
        content- and repository-determined memos are warmed here in
        parallel; the serial phases then consume memo hits carrying the
        worker-measured costs.  Simulated time, outcomes, and output
        bytes are identical either way — with the pool off this is a
        no-op and the phase doesn't exist.
        """
        from repro.util.hostpool import get_pool
        if get_pool() is None:
            return
        enclave = self._service._enclave
        for plan in self._plans:
            blobs = [plan.jobs[name].blob
                     for name in plan.quorum["changed"]]
            if blobs:
                enclave.ecall("prewarm_sanitize", plan.repo_id, blobs)

    def _scan_phase(self):
        """Account-scan every tenant's blobs (memoized across tenants)."""
        enclave = self._service._enclave
        for plan in self._plans:
            for name in plan.quorum["changed"]:
                job = plan.jobs[name]
                info = enclave.ecall("scan_package", plan.repo_id, job.blob)
                job.needs_catalog = info["needs_catalog"]
                if info.get("deduped"):
                    plan.deduped_scans += 1
            plan.barrier = max(
                (job.ready for job in plan.jobs.values()), default=0.0)
            plan.end = max(plan.end, plan.barrier)

    def _sanitize_phase(self) -> float:
        """All tenants' sanitize jobs on one serial enclave channel.

        FIFO by availability (blob readiness; catalog-dependent jobs wait
        for their tenant's barrier), ties broken by tenant order then
        package name.  Host-side ecall order follows the simulated order,
        so the shared-analysis memo charges the first tenant to reach a
        blob — exactly what the timeline says.
        """
        enclave = self._service._enclave
        heap: list[tuple[float, int, str]] = []
        for plan in self._plans:
            for name in plan.quorum["changed"]:
                job = plan.jobs[name]
                avail = (max(plan.barrier, job.ready) if job.needs_catalog
                         else job.ready)
                heapq.heappush(heap, (avail, plan.index, name))
        enclave_free = self._enclave_busy
        cache = self._service.cache
        while heap:
            avail, plan_index, name = heapq.heappop(heap)
            plan = self._plans[plan_index]
            job = plan.jobs[name]
            if job.needs_catalog and plan.catalog_info is None:
                plan.catalog_info = enclave.ecall("finish_catalog",
                                                  plan.repo_id)
            precatalog = plan.catalog_info is None
            start = max(enclave_free, avail)
            try:
                result = enclave.ecall(
                    "sanitize_package_precatalog" if precatalog
                    else "sanitize_package",
                    plan.repo_id, job.blob)
            except SanitizationRejected as exc:
                plan.rejected.append((name, exc.reason))
                continue
            duration = self._service.simulated_sanitize_duration(result)
            self._service.note_sanitize_cost(plan.repo_id, name,
                                             len(job.blob), duration)
            finish = start + duration
            enclave_free = finish
            cache.put_sanitized(plan.repo_id, name, result.blob)
            self._charge_shard(cache.shard_index(plan.repo_id, name),
                               len(result.blob), finish)
            plan.results.append(result)
            plan.sanitize_elapsed += duration
            if precatalog:
                plan.sanitized_early += 1
            if result.shared_analysis:
                plan.shared_sanitize += 1
            plan.end = max(plan.end, finish)
            self._timeline.append((plan.repo_id, name, start, finish))
        return enclave_free

    # -- shared accounting ---------------------------------------------------

    def _charge_shard(self, shard: int, size: int, at: float) -> float:
        """Serialize one disk operation on a cache shard (all tenants)."""
        start = max(self._shard_free.get(shard, 0.0), at)
        finish = start + LOCAL_DISK_SEEK_S \
            + size / LOCAL_DISK_BANDWIDTH_BYTES_PER_S
        self._shard_free[shard] = finish
        return finish

    def _report_for(self, plan: _TenantPlan) -> RefreshReport:
        return RefreshReport(
            serial=plan.quorum["serial"],
            changed_packages=list(plan.quorum["changed"]),
            sanitized=len(plan.results),
            rejected=plan.rejected,
            downloaded_bytes=plan.downloaded_bytes,
            quorum_elapsed=plan.quorum_elapsed - self._origin,
            download_elapsed=plan.download_elapsed,
            sanitize_elapsed=plan.sanitize_elapsed,
            insecure_findings=plan.catalog_info["insecure_findings"],
            results=plan.results,
            wall_elapsed=plan.end - self._origin,
            pipelined=True,
            orchestrated=True,
            mirror_assignments=plan.mirror_assignments,
            sanitized_early=plan.sanitized_early,
            deduped_downloads=plan.deduped_downloads,
            deduped_download_bytes=plan.deduped_download_bytes,
            deduped_scans=plan.deduped_scans,
            shared_sanitize=plan.shared_sanitize,
            interleaved_downloads=plan.interleaved_downloads,
            evicted_redownloads=plan.evicted_redownloads,
            prescanned=plan.prescanned,
            resanitize_wait_s=self._resanitize_waits.get(plan.repo_id, 0.0),
        )
