"""Paper-vs-measured table rendering for the benchmark suite.

Benches build a :class:`PaperTable` and call :func:`record_table`; the
benchmark suite's conftest prints every recorded table in the pytest
terminal summary (so tables survive pytest's output capturing) and writes
them to ``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_RECORDED: list["PaperTable"] = []


@dataclass
class PaperTable:
    """A table comparing the paper's reported values with ours."""

    experiment: str           # e.g. "Table 3" or "Figure 12"
    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells):
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row has {len(cells)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def note(self, text: str):
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return " | ".join(cell.ljust(width)
                              for cell, width in zip(cells, widths))

        out = [f"== {self.experiment}: {self.title} =="]
        out.append(line(self.columns))
        out.append("-+-".join("-" * width for width in widths))
        out.extend(line(row) for row in self.rows)
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)


def record_table(table: PaperTable):
    _RECORDED.append(table)


def recorded_tables() -> list[PaperTable]:
    return list(_RECORDED)


def reset_tables():
    _RECORDED.clear()
