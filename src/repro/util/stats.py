"""Statistics helpers used by the evaluation harness.

The paper reports 20 % trimmed means, percentile boxplots (5/25/50/75/95),
and Spearman rank correlations.  These helpers implement the first two;
Spearman comes from scipy in the bench harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (same convention as numpy default).

    ``q`` is expressed in percent, e.g. ``percentile(xs, 95)``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    # The equal-neighbour guard also avoids subnormal underflow in the
    # interpolation products (e.g. 5e-324 * 0.75 rounding to 0.0).
    if low == high or ordered[low] == ordered[high]:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def trimmed_mean(values: Sequence[float], trim: float = 0.2) -> float:
    """Mean after dropping ``trim`` fraction from each tail (paper uses 20 %)."""
    if not values:
        raise ValueError("trimmed mean of empty sequence")
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim fraction out of range: {trim}")
    ordered = sorted(values)
    drop = int(len(ordered) * trim)
    kept = ordered[drop:len(ordered) - drop] or ordered
    return sum(kept) / len(kept)


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary plus mean, as used in the paper's boxplots."""

    count: int
    mean: float
    p5: float
    p25: float
    p50: float
    p75: float
    p95: float

    def row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p5": self.p5,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p95": self.p95,
        }


def summarize_latencies(values: Iterable[float]) -> LatencySummary:
    """Build the five-number summary the paper's boxplots report."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize empty latency series")
    return LatencySummary(
        count=len(data),
        mean=sum(data) / len(data),
        p5=percentile(data, 5),
        p25=percentile(data, 25),
        p50=percentile(data, 50),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
    )


class QuantileSketch:
    """Mergeable bounded-memory quantile estimator (t-digest style).

    Values are absorbed into O(``compression``) weighted centroids (a
    few hundred at the default, independent of how many values stream
    through); quantiles interpolate between adjacent centroid means.
    Centroid capacity follows the t-digest scale function — tight near
    the tails, generous in the middle — via the weight limit
    ``4 n q (1 - q) / compression`` for a centroid sitting at quantile
    ``q``, so tail quantiles stay sharp as ``n`` grows.

    Error contract (asserted by the sketch test suite):

    * ``quantile(q)`` is exact while fewer than ``compression`` distinct
      values were added (every value keeps its own centroid);
    * otherwise the *rank* error is bounded: the reported value's true
      rank is within ``2 / compression`` (in quantile units, e.g. 2 %
      at the default ``compression=100``) of ``q`` — value error on
      heavy-tailed data follows the local density;
    * ``quantile(0)`` / ``quantile(100)`` are the exact min / max
      (tracked outside the centroids);
    * streaming order does not change the bound, and neither does
      :meth:`merge` — merging sketches of two halves obeys the same
      contract as one sketch of the concatenation (merge is commutative
      up to float round-off, not bitwise associative).

    The interpolation guard mirrors :func:`percentile`'s: equal
    neighbouring centroids short-circuit, so subnormal tails cannot
    underflow to 0.0 mid-interpolation.
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer",
                 "count", "_min", "_max")

    def __init__(self, compression: int = 100):
        if compression < 20:
            raise ValueError(f"compression too small: {compression}")
        self.compression = compression
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[tuple[float, float]] = []
        self.count = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float, weight: float = 1.0):
        if weight <= 0:
            raise ValueError(f"non-positive weight: {weight}")
        value = float(value)
        self._buffer.append((value, weight))
        self.count += weight
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= 2 * self.compression:
            self._compress()

    def extend(self, values: Iterable[float]):
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch"):
        """Fold ``other``'s mass into this sketch (other is unchanged)."""
        self._buffer.extend(zip(other._means, other._weights))
        self._buffer.extend(other._buffer)
        self.count += other.count
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._compress()

    def _compress(self):
        """Re-cluster all mass under the scale-function weight limits."""
        pending = sorted(
            self._buffer + list(zip(self._means, self._weights)))
        self._buffer.clear()
        if not pending:
            return
        total = sum(w for _, w in pending)
        means: list[float] = []
        weights: list[float] = []
        seen = 0.0
        acc_mean, acc_w = pending[0]
        seen = acc_w
        for mean, w in pending[1:]:
            q = (seen - acc_w / 2.0) / total
            limit = 4.0 * total * q * (1.0 - q) / self.compression
            if acc_w + w <= max(limit, 1.0):
                acc_mean += (mean - acc_mean) * (w / (acc_w + w))
                acc_w += w
            else:
                means.append(acc_mean)
                weights.append(acc_w)
                acc_mean, acc_w = mean, w
            seen += w
        means.append(acc_mean)
        weights.append(acc_w)
        self._means = means
        self._weights = weights

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in percent, as
        :func:`percentile`)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q out of range: {q}")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        if self._buffer:
            self._compress()
        means = self._means
        weights = self._weights
        if q == 0:
            return self._min
        if q == 100:
            return self._max
        if len(means) == 1:
            return means[0]
        if len(means) == self.count:
            # Every centroid is a singleton (nothing was ever merged):
            # answer exactly, in :func:`percentile`'s convention.
            return percentile(means, q)
        target = (q / 100.0) * self.count
        # Centroid i covers ranks centred at (cumulative before i) + w/2.
        seen = 0.0
        prev_mean, prev_rank = self._min, 0.0
        for mean, w in zip(means, weights):
            rank = seen + w / 2.0
            if target <= rank:
                if rank == prev_rank or mean == prev_mean:
                    return mean
                fraction = (target - prev_rank) / (rank - prev_rank)
                return prev_mean + (mean - prev_mean) * fraction
            prev_mean, prev_rank = mean, rank
            seen += w
        if self._max == prev_mean or self.count == prev_rank:
            return self._max
        fraction = (target - prev_rank) / (self.count - prev_rank)
        return prev_mean + (self._max - prev_mean) * fraction

    def to_dict(self) -> dict:
        """JSON-ready snapshot; :meth:`from_dict` round-trips it."""
        if self._buffer:
            self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "min": None if self.count == 0 else self._min,
            "max": None if self.count == 0 else self._max,
            "means": list(self._means),
            "weights": list(self._weights),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(compression=payload["compression"])
        sketch._means = [float(m) for m in payload["means"]]
        sketch._weights = [float(w) for w in payload["weights"]]
        sketch.count = float(payload["count"])
        if payload["min"] is not None:
            sketch._min = float(payload["min"])
            sketch._max = float(payload["max"])
        return sketch


def human_bytes(size: float) -> str:
    """Render a byte count for table output, e.g. ``3.1 GB``."""
    magnitude = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if magnitude < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(magnitude)} {unit}"
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024
    raise AssertionError("unreachable")


def human_duration(seconds: float) -> str:
    """Render a duration for table output, e.g. ``13.4 min`` or ``36 ms``."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"
