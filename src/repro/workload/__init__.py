"""Synthetic Alpine-like workloads calibrated to the paper's statistics.

The paper evaluates on Alpine v3.11 main + community: 11,581 packages,
~3 GB, with the script census of Tables 1-2 and the size / file-count
distributions behind Figs. 8-9.  This package samples synthetic package
populations from those published distributions (details in EXPERIMENTS.md);
``scale`` shrinks the population while preserving proportions.
"""

from repro.workload.generator import (
    GeneratedWorkload,
    WorkloadExpectation,
    generate_workload,
    generate_update_batch,
    PAPER_TOTALS,
)
from repro.workload.scenario import (
    FleetRefreshReport,
    Scenario,
    build_multi_tenant_scenario,
    build_scenario,
    fleet_refresh,
    multi_tenant_refresh,
)

__all__ = [
    "GeneratedWorkload",
    "WorkloadExpectation",
    "generate_workload",
    "generate_update_batch",
    "PAPER_TOTALS",
    "FleetRefreshReport",
    "Scenario",
    "build_multi_tenant_scenario",
    "build_scenario",
    "fleet_refresh",
    "multi_tenant_refresh",
]
