"""Fleet refresh — one update round fanned out to a client fleet.

The end-to-end flow the north star cares about (publish → refresh →
fleet pull) at two scales:

* *serial vs scheduled* — the same small fleet driven once with clients
  serializing on the clock (the pre-refactor behaviour, kept as
  ``scheduled=False``) and once as concurrent channels on the shared
  transfer schedule, to quantify what the single-engine refactor buys;
* *fleet scale* — a >= 256-client fan-out (``REPRO_FLEET_CLIENTS``
  overrides), feasible only on the scheduled path: all clients resolve in
  one incremental event-driven ``solve`` (see
  ``bench_schedule_solver.py`` for the solver's own scaling curve) and
  their per-client timings reflect shared-uplink contention rather than
  per-client serialization;
* *layered NICs* — the same small fleet with low-end 64 KB/s client
  downlinks (``client_downlink``), showing the per-client capacity layer
  binding below the uplink fair share.
"""

import os
import time

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario, fleet_refresh

FLEET_CLIENTS = int(os.environ.get("REPRO_FLEET_CLIENTS", "256"))


def _scenario():
    workload = generate_workload(scale=0.004, seed=5, with_content=True)
    return build_scenario(workload=workload, key_bits=1024,
                          with_monitor=False)


def test_fleet_refresh_scaling(benchmark, maybe_profile):
    def sweep():
        results = {}
        results["serial-16"] = fleet_refresh(
            _scenario(), clients=16, installs_per_client=1, scheduled=False)
        results["scheduled-16"] = fleet_refresh(
            _scenario(), clients=16, installs_per_client=1, scheduled=True)
        results["scheduled-16-nic64K"] = fleet_refresh(
            _scenario(), clients=16, installs_per_client=1, scheduled=True,
            client_downlink=64 * 1024)
        results[f"scheduled-{FLEET_CLIENTS}"] = fleet_refresh(
            _scenario(), clients=FLEET_CLIENTS, installs_per_client=1,
            scheduled=True)
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("test_fleet_refresh_scaling", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)

    table = PaperTable(
        experiment="Fleet refresh",
        title="Update fan-out: serial clients vs shared transfer schedule",
        columns=["configuration", "fan-out wall", "slowest client",
                 "mean client", "client-seconds", "installs"],
    )
    for label, fleet in results.items():
        mean = sum(fleet.client_elapsed) / len(fleet.client_elapsed)
        table.add_row(
            label,
            human_duration(fleet.fanout_elapsed),
            human_duration(fleet.slowest_client),
            human_duration(mean),
            human_duration(sum(fleet.client_elapsed)),
            fleet.installs,
        )
    table.note("scheduled clients share the TSR uplink max-min fairly: "
               "client-seconds exceed the fan-out wall-clock (overlap), "
               "and per-client latency grows with fleet size (contention); "
               "serial mode adds the clients' slices back to back; the "
               "nic64K row layers 64 KB/s client downlinks under the "
               "uplink fair share")
    record_table(table)

    serial, scheduled = results["serial-16"], results["scheduled-16"]
    nic_capped = results["scheduled-16-nic64K"]
    large = results[f"scheduled-{FLEET_CLIENTS}"]
    # The schedule overlaps the fan-out that serial mode adds up.
    assert scheduled.fanout_elapsed < serial.fanout_elapsed
    # Low-end NICs bind below the 16-way uplink share and slow the fleet.
    assert nic_capped.fanout_elapsed > scheduled.fanout_elapsed
    # Contention, not serialization: resource-seconds exceed the makespan,
    # and every client stays in flight until near the end.
    assert sum(large.client_elapsed) > 2 * large.fanout_elapsed
    assert large.clients >= 256 or FLEET_CLIENTS < 256
    assert len(large.client_elapsed) == large.clients
    # Shared-uplink contention: the large fleet's slowest client waits
    # longer than the small fleet's.
    assert large.slowest_client > scheduled.slowest_client
