"""Tests for the pipelined refresh engine and its supporting layers:
parallel-transfer accounting (simnet), per-mirror bandwidth (mirrors),
the sharded package cache, and the fleet_refresh scenario."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.cache import PackageCache
from repro.core.service import SEALED_STATE_PATH
from repro.mirrors.builder import MirrorSpec
from repro.mirrors.mirror import MirrorBehavior
from repro.simnet.latency import Continent, DEFAULT_BANDWIDTH_BYTES_PER_S
from repro.simnet.network import (
    ParallelTransferSchedule,
    max_min_rates,
)
from repro.util.errors import NetworkError, PolicyError
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario, fleet_refresh


def _mini_packages():
    return [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl" * 400)]),
        ApkPackage(name="zlib", version="1.2.11-r3", depends=["musl"],
                   files=[PackageFile("/lib/libz.so", b"\x7fELF zlib" * 900)]),
        ApkPackage(name="nginx", version="1.16-r0", depends=["musl"],
                   scripts={".pre-install": "addgroup -S www\n"
                                            "adduser -S -G www nginx\n"},
                   files=[PackageFile("/usr/sbin/nginx", b"\x7fELF nginx" * 600)]),
        ApkPackage(name="badpkg", version="1-r0",
                   scripts={".post-install": "add-shell /bin/badsh\n"}),
    ]


def _two_scenarios():
    sequential = build_scenario(packages=_mini_packages(), key_bits=1024,
                                refresh=False, with_monitor=False)
    pipelined = build_scenario(packages=_mini_packages(), key_bits=1024,
                               refresh=False, with_monitor=False)
    return sequential, pipelined


# -- transfer accounting ------------------------------------------------------


class TestMaxMinRates:
    def test_uncapped_link_gives_full_rates(self):
        assert max_min_rates({"a": 5.0, "b": 3.0}, None) == {"a": 5.0, "b": 3.0}
        assert max_min_rates({"a": 5.0, "b": 3.0}, 100.0) == {"a": 5.0, "b": 3.0}

    def test_fair_share_split(self):
        rates = max_min_rates({"a": 10.0, "b": 10.0}, 10.0)
        assert rates == {"a": 5.0, "b": 5.0}

    def test_slack_redistributed(self):
        # b can only take 2; a gets the remaining 8.
        rates = max_min_rates({"a": 10.0, "b": 2.0}, 10.0)
        assert rates["b"] == 2.0
        assert rates["a"] == pytest.approx(8.0)

    def test_empty(self):
        assert max_min_rates({}, 10.0) == {}


class TestParallelTransferSchedule:
    def test_single_channel_is_serial(self):
        schedule = ParallelTransferSchedule()
        schedule.enqueue("m1", "a", setup=1.0, size_bytes=100, bandwidth=100.0)
        schedule.enqueue("m1", "b", setup=1.0, size_bytes=100, bandwidth=100.0)
        timings = schedule.solve()
        assert timings["a"].finish == pytest.approx(2.0)
        assert timings["b"].start == pytest.approx(2.0)
        assert timings["b"].finish == pytest.approx(4.0)

    def test_independent_channels_overlap(self):
        schedule = ParallelTransferSchedule()
        schedule.enqueue("m1", "a", setup=0.0, size_bytes=100, bandwidth=10.0)
        schedule.enqueue("m2", "b", setup=0.0, size_bytes=100, bandwidth=10.0)
        timings = schedule.solve()
        assert timings["a"].finish == pytest.approx(10.0)
        assert timings["b"].finish == pytest.approx(10.0)

    def test_shared_downlink_halves_concurrent_rate(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        schedule.enqueue("m1", "a", setup=0.0, size_bytes=100, bandwidth=10.0)
        schedule.enqueue("m2", "b", setup=0.0, size_bytes=100, bandwidth=10.0)
        timings = schedule.solve()
        # Both run at 5 B/s while concurrent.
        assert timings["a"].finish == pytest.approx(20.0)
        assert timings["b"].finish == pytest.approx(20.0)

    def test_downlink_slack_speeds_up_unfinished_stream(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        schedule.enqueue("m1", "short", setup=0.0, size_bytes=50, bandwidth=10.0)
        schedule.enqueue("m2", "long", setup=0.0, size_bytes=150, bandwidth=10.0)
        timings = schedule.solve()
        # Shared until t=10 (50 B each done), then "long" runs alone at 10.
        assert timings["short"].finish == pytest.approx(10.0)
        assert timings["long"].finish == pytest.approx(20.0)

    def test_setup_phase_consumes_no_downlink(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        schedule.enqueue("m1", "a", setup=5.0, size_bytes=100, bandwidth=10.0)
        schedule.enqueue("m2", "b", setup=0.0, size_bytes=50, bandwidth=10.0)
        timings = schedule.solve()
        # b finishes its 50 bytes alone at full rate before a's setup ends.
        assert timings["b"].finish == pytest.approx(5.0)
        assert timings["a"].finish == pytest.approx(15.0)

    def test_start_time_offsets_everything(self):
        schedule = ParallelTransferSchedule()
        schedule.enqueue("m1", "a", setup=1.0, size_bytes=10, bandwidth=10.0)
        timings = schedule.solve(start_time=100.0)
        assert timings["a"].start == pytest.approx(100.0)
        assert timings["a"].finish == pytest.approx(102.0)


# -- per-mirror bandwidth ------------------------------------------------------


class TestPerMirrorBandwidth:
    def test_spec_bandwidth_reaches_host_and_mirror(self):
        slow = MirrorSpec("slow.example", Continent.EUROPE,
                          bandwidth=512 * 1024)
        scenario = build_scenario(
            packages=_mini_packages(),
            mirror_specs=(
                slow,
                MirrorSpec("fast.example", Continent.EUROPE),
            ),
            refresh=False, with_monitor=False,
        )
        assert scenario.mirrors["slow.example"].bandwidth == 512 * 1024
        assert scenario.network.host("slow.example").bandwidth == 512 * 1024
        assert (scenario.network.host("fast.example").bandwidth
                == DEFAULT_BANDWIDTH_BYTES_PER_S)

    def test_mirror_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            from repro.mirrors.mirror import Mirror
            from repro.mirrors.repository import OriginalRepository
            from repro.crypto.rsa import generate_keypair
            origin = OriginalRepository(generate_keypair(1024, seed=1))
            Mirror("m", origin, bandwidth=0)

    def test_bytes_served_accounted(self):
        scenario = build_scenario(packages=_mini_packages(),
                                  with_monitor=False)
        total = sum(m.bytes_served for m in scenario.mirrors.values())
        assert total > 0


# -- sharded cache -------------------------------------------------------------


class TestShardedCache:
    def test_round_trip_across_shards(self):
        cache = PackageCache(shards=4)
        names = [f"pkg-{i}" for i in range(32)]
        for name in names:
            cache.put_original("repo-1", name, name.encode())
            cache.put_sanitized("repo-1", name, name.encode() * 2)
        for name in names:
            assert cache.get_original("repo-1", name) == name.encode()
            assert cache.get_sanitized("repo-1", name) == name.encode() * 2
        used = {cache.shard_index("repo-1", name) for name in names}
        assert len(used) > 1  # blobs really spread over shards

    def test_shard_assignment_is_stable(self):
        cache = PackageCache(shards=8)
        assert (cache.shard_index("repo-1", "musl")
                == cache.shard_index("repo-1", "musl"))
        other = PackageCache(shards=8)
        assert (cache.shard_index("repo-1", "musl")
                == other.shard_index("repo-1", "musl"))

    def test_stats_track_hits_and_misses(self):
        cache = PackageCache(shards=2)
        cache.put_original("r", "a", b"x")
        assert cache.get_original("r", "a") == b"x"
        assert cache.get_original("r", "missing") is None
        stats = cache.shard_stats()
        assert sum(s.writes for s in stats) == 1
        assert sum(s.hits for s in stats) == 1
        assert sum(s.misses for s in stats) == 1

    def test_root_disk_still_holds_sealed_state(self):
        scenario = build_scenario(packages=_mini_packages(),
                                  with_monitor=False)
        assert scenario.tsr.cache.disk.isfile(SEALED_STATE_PATH)

    def test_invalidate_and_tamper_route_to_shard(self):
        cache = PackageCache(shards=4)
        cache.put_sanitized("r", "a", b"good")
        cache.tamper_sanitized("r", "a", b"evil")
        assert cache.get_sanitized("r", "a") == b"evil"
        cache.invalidate("r", "a")
        assert cache.get_sanitized("r", "a") is None

    def test_single_shard_still_works(self):
        cache = PackageCache(shards=1)
        cache.put_original("r", "a", b"x")
        assert cache.get_original("r", "a") == b"x"

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            PackageCache(shards=0)


# -- pipelined refresh: equivalence --------------------------------------------


class TestPipelineEquivalence:
    def test_same_verdicts_and_identical_index(self):
        sequential, pipelined = _two_scenarios()
        seq = sequential.tsr.refresh(sequential.repo_id)
        pipe = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)

        assert ({r.package.name for r in seq.results}
                == {r.package.name for r in pipe.results})
        assert dict(seq.rejected) == dict(pipe.rejected)
        assert seq.serial == pipe.serial
        # Deterministic keys -> the signed sanitized indexes agree entry by
        # entry, i.e. the sanitized blobs are byte-identical across modes.
        seq_index = RepositoryIndex.from_bytes(
            sequential.tsr.get_index_bytes(sequential.repo_id))
        pipe_index = RepositoryIndex.from_bytes(
            pipelined.tsr.get_index_bytes(pipelined.repo_id))
        assert set(seq_index.entries) == set(pipe_index.entries)
        for name, entry in seq_index.entries.items():
            assert pipe_index.entries[name].sha256 == entry.sha256

    def test_account_package_waits_for_catalog_barrier(self):
        _, pipelined = _two_scenarios()
        report = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)
        # nginx creates accounts -> deferred; musl/zlib sanitize early.
        assert report.sanitized_early == 2
        assert report.sanitized == 3

    def test_served_packages_verify_after_pipelined_refresh(self):
        _, pipelined = _two_scenarios()
        pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)
        blob = pipelined.tsr.serve_package(pipelined.repo_id, "nginx")
        parsed = ApkPackage.parse(blob)
        assert parsed.verify([pipelined.tsr_public_key])

    def test_incremental_pipelined_refresh_uses_cache(self):
        _, scenario = _two_scenarios()
        scenario.tsr.refresh(scenario.repo_id, pipelined=True)
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r3",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl r3")],
        ))
        scenario.sync_mirrors()
        report = scenario.tsr.refresh(scenario.repo_id, pipelined=True)
        assert report.changed_packages == ["musl"]
        assert report.sanitized == 1

    def test_precatalog_guard_refuses_account_packages(self):
        _, scenario = _two_scenarios()
        quorum_blob = None
        tsr = scenario.tsr
        mirrors = tsr._policy_mirrors(scenario.repo_id)
        quorum = tsr._read_quorum(scenario.repo_id, mirrors)
        blob = tsr._download_package(mirrors, "nginx",
                                     quorum["expected"]["nginx"])
        with pytest.raises(PolicyError):
            tsr._enclave.ecall("sanitize_package_precatalog",
                               scenario.repo_id, blob)


# -- pipelined refresh: schedule properties ------------------------------------


class TestPipelineSchedule:
    def test_overlap_beats_sequential_wall_clock(self):
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        sequential = build_scenario(workload=workload, key_bits=1024,
                                    refresh=False, with_monitor=False)
        seq = sequential.tsr.refresh(sequential.repo_id)
        pipelined = build_scenario(workload=workload, key_bits=1024,
                                   refresh=False, with_monitor=False)
        pipe = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)

        assert pipe.total_elapsed < seq.total_elapsed
        # Resource-seconds strictly exceed the wall-clock: overlap happened.
        assert (pipe.download_elapsed + pipe.sanitize_elapsed
                > pipe.total_elapsed - pipe.quorum_elapsed)
        assert pipe.overlap_saved > 0.0
        assert pipe.pipelined and not seq.pipelined

    def test_downloads_spread_over_mirrors(self):
        _, pipelined = _two_scenarios()
        report = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)
        assert set(report.mirror_assignments) == {"musl", "zlib", "nginx",
                                                  "badpkg"}
        assert len(set(report.mirror_assignments.values())) > 1

    def test_max_streams_caps_fanout(self):
        _, pipelined = _two_scenarios()
        report = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True,
                                       max_streams=1)
        assert len(set(report.mirror_assignments.values())) == 1

    def test_wall_clock_advances_by_wall_elapsed(self):
        _, pipelined = _two_scenarios()
        before = pipelined.clock.now()
        report = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)
        assert pipelined.clock.now() - before == pytest.approx(
            report.wall_elapsed)


# -- pipelined refresh: adversarial mirrors ------------------------------------


class TestPipelineFaultTolerance:
    def test_corrupt_mirror_detected_and_retried(self):
        scenario = build_scenario(
            packages=_mini_packages(),
            mirror_specs=(
                MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
                MirrorSpec("mirror-eu-2.example", Continent.EUROPE,
                           behavior=MirrorBehavior.CORRUPT),
                MirrorSpec("mirror-na-1.example", Continent.NORTH_AMERICA),
            ),
            refresh=False, with_monitor=False,
        )
        report = scenario.tsr.refresh(scenario.repo_id, pipelined=True)
        assert report.sanitized == 3
        assert dict(report.rejected).keys() == {"badpkg"}
        # Nothing ends up assigned to the corrupt mirror.
        assert "mirror-eu-2.example" not in set(
            report.mirror_assignments.values())

    def test_down_mirror_falls_back(self):
        scenario = build_scenario(packages=_mini_packages(),
                                  refresh=False, with_monitor=False)
        scenario.network.set_down("mirror-eu-1.example")
        report = scenario.tsr.refresh(scenario.repo_id, pipelined=True)
        assert report.sanitized == 3
        assert "mirror-eu-1.example" not in set(
            report.mirror_assignments.values())

    def test_majority_corrupt_mirrors_retried_until_honest(self):
        scenario = build_scenario(
            packages=_mini_packages(),
            mirror_specs=(
                MirrorSpec("corrupt-1", Continent.EUROPE,
                           behavior=MirrorBehavior.CORRUPT),
                MirrorSpec("corrupt-2", Continent.EUROPE,
                           behavior=MirrorBehavior.CORRUPT),
                MirrorSpec("honest", Continent.EUROPE),
            ),
            refresh=False, with_monitor=False,
        )
        report = scenario.tsr.refresh(scenario.repo_id, pipelined=True)
        assert report.sanitized == 3
        # Every package ends on the only honest mirror, no matter how many
        # retry rounds it took.
        assert set(report.mirror_assignments.values()) == {"honest"}

    def test_all_mirrors_corrupt_raises(self):
        scenario = build_scenario(
            packages=_mini_packages(),
            mirror_specs=(
                MirrorSpec("corrupt-1", Continent.EUROPE,
                           behavior=MirrorBehavior.CORRUPT),
                MirrorSpec("corrupt-2", Continent.EUROPE,
                           behavior=MirrorBehavior.CORRUPT),
            ),
            refresh=False, with_monitor=False,
        )
        with pytest.raises(NetworkError):
            scenario.tsr.refresh(scenario.repo_id, pipelined=True)

    def test_retries_reinserted_into_live_schedule(self):
        """Retries ride the live schedule on the earliest-free channel.

        With a down mirror holding two queued packages, the channel stalls
        for one timeout per failed probe (detections at ~5 s and ~10 s).
        The first retry must be rescheduled onto an idle honest channel
        and finish while the down channel is *still* stalling — the
        retired serial fallback only started retrying after the whole
        parallel phase (>= 10 s) had drained.
        """
        scenario = build_scenario(packages=_mini_packages(),
                                  refresh=False, with_monitor=False)
        scenario.network.set_down("mirror-eu-2.example")
        from repro.core.pipeline import RefreshPipeline
        tsr = scenario.tsr
        mirrors = tsr._policy_mirrors(scenario.repo_id)
        quorum = tsr._read_quorum(scenario.repo_id, mirrors)
        pipeline = RefreshPipeline(tsr, scenario.repo_id, mirrors,
                                   quorum["expected"])
        names = list(quorum["changed"])
        fetched, durations, finishes, assignments = \
            pipeline._download_pipelined(names)
        timeout = scenario.network.timeout
        assert set(fetched) == set(names)
        assert "mirror-eu-2.example" not in set(assignments.values())
        retried = [name for name in names if finishes[name] >= timeout]
        assert len(retried) == 2
        # Overlap: one retry completed during the second stall, i.e.
        # before the failed channel's queue drained at 2 * timeout.
        assert min(finishes[name] for name in retried) < 2 * timeout
        assert max(finishes.values()) < 2 * timeout + 0.5
        # Durations account the stalled attempt plus the retry transfer.
        for name in retried:
            assert durations[name] > timeout


# -- fleet refresh -------------------------------------------------------------


class TestFleetRefresh:
    def test_fleet_refresh_drives_clients(self):
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        scenario = build_scenario(workload=workload, key_bits=1024,
                                  with_monitor=False)
        fleet = fleet_refresh(scenario, clients=3, installs_per_client=1,
                              pipelined=True)
        assert fleet.clients == 3
        assert fleet.installs >= 1
        assert len(fleet.client_elapsed) == 3
        assert fleet.refresh.pipelined
        assert fleet.scheduled
        assert fleet.wall_elapsed >= fleet.slowest_client
        assert fleet.updated_packages  # an update batch was published

    def test_fleet_refresh_validates_clients(self):
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        scenario = build_scenario(workload=workload, key_bits=1024,
                                  with_monitor=False)
        with pytest.raises(ValueError):
            fleet_refresh(scenario, clients=0)

    def test_scheduled_fleet_overlaps_clients(self):
        """Same fleet, serial vs scheduled: the shared schedule must beat
        per-client serialization on fan-out wall-clock while showing
        contention (resource-seconds exceed the makespan)."""
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        a = build_scenario(workload=workload, key_bits=1024,
                           with_monitor=False)
        serial = fleet_refresh(a, clients=4, installs_per_client=1,
                               scheduled=False)
        b = build_scenario(workload=workload, key_bits=1024,
                           with_monitor=False)
        sched = fleet_refresh(b, clients=4, installs_per_client=1,
                              scheduled=True)
        assert serial.installs == sched.installs
        assert not serial.scheduled and sched.scheduled
        # Fan-out no longer serializes per client...
        assert sched.fanout_elapsed < serial.fanout_elapsed
        # ...but clients do contend for the TSR uplink: summed per-client
        # durations exceed the shared-schedule makespan.
        assert sum(sched.client_elapsed) > sched.fanout_elapsed
        assert sched.slowest_client <= sched.fanout_elapsed + 1e-9

    def test_scheduled_fleet_reproducible(self):
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        runs = []
        for _ in range(2):
            scenario = build_scenario(workload=workload, key_bits=1024,
                                      with_monitor=False)
            runs.append(fleet_refresh(scenario, clients=3,
                                      installs_per_client=1, seed=7))
        assert runs[0].installs == runs[1].installs
        assert runs[0].client_elapsed == runs[1].client_elapsed
        # (wall_elapsed also folds in *really measured* sanitize time,
        # which varies run to run by design — see EXPERIMENTS.md §1 — so
        # only the network-scheduled parts are asserted identical.)
        assert runs[0].fanout_elapsed == runs[1].fanout_elapsed

    def test_scheduled_fleet_timings_reflect_contention(self):
        """With many clients pulling from one TSR uplink, per-client time
        must grow with fleet size (shared-downlink contention), not stay
        flat as it would if clients simply serialized."""
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        small = build_scenario(workload=workload, key_bits=1024,
                               with_monitor=False)
        few = fleet_refresh(small, clients=2, installs_per_client=1)
        big = build_scenario(workload=workload, key_bits=1024,
                             with_monitor=False)
        many = fleet_refresh(big, clients=12, installs_per_client=1)
        assert many.slowest_client > few.slowest_client

    def test_fleet_client_nic_caps_bind(self):
        """Layered capacities: low-end client NICs must slow the fan-out
        even when the shared TSR uplink has headroom."""
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        fast = build_scenario(workload=workload, key_bits=1024,
                              with_monitor=False)
        unconstrained = fleet_refresh(fast, clients=2, installs_per_client=1)
        slow = build_scenario(workload=workload, key_bits=1024,
                              with_monitor=False)
        constrained = fleet_refresh(slow, clients=2, installs_per_client=1,
                                    client_downlink=64 * 1024)
        assert constrained.installs == unconstrained.installs
        # Two clients on a 3 MB/s uplink would get ~1.5 MB/s each; a
        # 64 KB/s NIC pins them far below that.
        assert constrained.fanout_elapsed > 2 * unconstrained.fanout_elapsed
        # The NIC value is recorded on the client hosts themselves.
        host = slow.network.host("fleet-11-000")
        assert host.downlink_bandwidth == 64 * 1024

    def test_fleet_heterogeneous_nics_stratify_clients(self):
        """A cycled client_downlink sequence gives per-client NICs; the
        slow-NIC client must finish after the fast-NIC one."""
        workload = generate_workload(scale=0.004, seed=5, with_content=True)
        scenario = build_scenario(workload=workload, key_bits=1024,
                                  with_monitor=False)
        fleet = fleet_refresh(scenario, clients=2, installs_per_client=1,
                              client_downlink=[32 * 1024, 1024 * 1024])
        slow_nic, fast_nic = fleet.client_elapsed
        assert slow_nic > fast_nic
