"""Delta-update path: differential properties, adversarial fallbacks,
and replay regression.

The delta path's contract is *byte-identity*: whatever a client accepts
through an index diff or a chunked package patch must be exactly the
bytes a full pull would have delivered — same content, same signature
verdicts.  This suite pins that contract three ways:

* **Differential property suite** — ~100 generated publication pairs
  (random signed index pairs + random apk version pairs), each diffed,
  wire-encoded, and re-applied: the reconstruction must equal the target
  byte for byte and verify identically.
* **Adversarial suite** — tampered envelopes are rejected and recovered
  via a clean full pull; a correctly-addressed delta targeting an *older*
  serial (the paper's rollback attack) is refused before signature
  verification; depth-bound and disabled servers fall back with counted
  reasons.
* **Replay regression** — a delta-enabled multi-round replay reproduces
  the full-pull replay's staleness/availability metrics (only wire bytes
  change) and is independently reproducible in one process.
"""

import random

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.core.delta import (
    apply_index_delta,
    apply_package_delta,
    blob_manifest,
    build_index_delta,
    build_package_delta,
    parse_index_delta_envelope,
    parse_package_delta_envelope,
)
from repro.crypto.hashes import sha256_hex
from repro.util.errors import DeltaError, RollbackError
from repro.workload.generator import evolve_packages, generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import build_scenario

# -- generators ---------------------------------------------------------------


def _random_entry(rng: random.Random, name: str,
                  pool: list[str]) -> IndexEntry:
    depends = tuple(rng.sample(pool, rng.randrange(0, min(3, len(pool) + 1))))
    return IndexEntry(
        name=name,
        version=f"{rng.randrange(1, 4)}.{rng.randrange(10)}-r{rng.randrange(6)}",
        size=rng.randrange(64, 1 << 20),
        sha256=sha256_hex(rng.randbytes(16)),
        depends=depends,
    )


def _random_index_pair(rng: random.Random, key):
    """A signed (base, target) index pair: updates + additions + removals."""
    names = [f"pkg-{i:02d}" for i in range(rng.randrange(3, 12))]
    base = RepositoryIndex(serial=rng.randrange(1, 50))
    for name in names:
        base.add(_random_entry(rng, name, []))
    target = RepositoryIndex(serial=base.serial + rng.randrange(1, 5))
    kept = [n for n in names if rng.random() > 0.25]
    for name in kept:
        entry = base.entries[name]
        if rng.random() < 0.5:
            entry = _random_entry(rng, name, [])  # changed release
        target.add(entry)
    for i in range(rng.randrange(0, 4)):
        target.add(_random_entry(rng, f"new-{i:02d}", kept))
    base.sign(key)
    target.sign(key)
    return base, target


def _mutate_blob(content: bytes, rng: random.Random) -> bytes:
    """Insert / delete / replace edits, like an upstream release would."""
    out = bytearray(content)
    for _ in range(rng.randrange(1, 4)):
        at = rng.randrange(len(out) + 1)
        kind = rng.choice(("insert", "delete", "replace"))
        if kind == "insert" or not out:
            out[at:at] = rng.randbytes(rng.randrange(1, 200))
        elif kind == "delete":
            del out[at:at + rng.randrange(1, 200)]
        else:
            span = rng.randrange(1, 200)
            out[at:at + span] = rng.randbytes(span)
    return bytes(out)


def _random_package_pair(rng: random.Random, key):
    """Two built releases of one random package (v2 mutates v1's files)."""
    files_v1 = [
        PackageFile(f"/usr/lib/f{i}.bin",
                    rng.randbytes(rng.randrange(2_000, 20_000)))
        for i in range(rng.randrange(1, 4))
    ]
    v1 = ApkPackage(name="gen-pkg", version="1.0-r0", files=files_v1)
    files_v2 = [PackageFile(f.path, _mutate_blob(f.content, rng), mode=f.mode)
                for f in files_v1]
    v2 = ApkPackage(name="gen-pkg", version="1.0-r1", files=files_v2)
    return v1.build(key), v2.build(key)


# -- differential property suite ----------------------------------------------


class TestIndexDeltaDifferential:
    @pytest.mark.parametrize("seed", range(50))
    def test_applied_delta_is_byte_identical_and_verifies(self, seed,
                                                          rsa_key):
        rng = random.Random(f"idx-pair:{seed}")
        base, target = _random_index_pair(rng, rsa_key)
        envelope = parse_index_delta_envelope(build_index_delta(base, target))
        rebuilt = apply_index_delta(base, envelope)
        assert rebuilt.to_bytes() == target.to_bytes()
        assert rebuilt.verify(rsa_key.public_key)
        # Full differential closure: re-parsing the reconstruction gives
        # the same verification verdict as the directly built target.
        reparsed = RepositoryIndex.from_bytes(rebuilt.to_bytes())
        assert reparsed.verify(rsa_key.public_key) \
            == target.verify(rsa_key.public_key)

    def test_wrong_base_is_rejected(self, rsa_key):
        rng = random.Random("idx-wrong-base")
        base, target = _random_index_pair(rng, rsa_key)
        other, _ = _random_index_pair(random.Random("other"), rsa_key)
        envelope = parse_index_delta_envelope(build_index_delta(base, target))
        with pytest.raises(DeltaError):
            apply_index_delta(other, envelope)

    def test_unsigned_target_cannot_be_diffed(self, rsa_key):
        base, target = _random_index_pair(random.Random("x"), rsa_key)
        target.signature = None
        with pytest.raises(DeltaError):
            build_index_delta(base, target)


class TestPackageDeltaDifferential:
    @pytest.mark.parametrize("seed", range(50))
    def test_patched_package_is_byte_identical(self, seed, rsa_key):
        rng = random.Random(f"pkg-pair:{seed}")
        blob_v1, blob_v2 = _random_package_pair(rng, rsa_key)
        envelope = build_package_delta(blob_manifest(blob_v1), blob_v2)
        if envelope is None:
            # Legitimate not-smaller outcome (tiny or fully rewritten
            # payloads); the server would tag a full pull instead.
            return
        reconstructed = apply_package_delta(blob_v1, envelope)
        assert reconstructed == blob_v2
        # Verification verdict identity: the signed-index checks a
        # package manager runs see the same bytes either way.
        assert sha256_hex(reconstructed) == sha256_hex(blob_v2)
        parsed = ApkPackage.parse(reconstructed)
        parsed.verify([rsa_key.public_key])

    def test_most_generated_pairs_actually_produce_deltas(self, rsa_key):
        """Guards the suite's power: if the chunker regressed into
        shipping every pair as not-smaller, byte-identity above would
        pass vacuously."""
        produced = 0
        for seed in range(50):
            rng = random.Random(f"pkg-pair:{seed}")
            blob_v1, blob_v2 = _random_package_pair(rng, rsa_key)
            if build_package_delta(blob_manifest(blob_v1), blob_v2) \
                    is not None:
                produced += 1
        assert produced >= 30

    def test_delta_is_smaller_than_full(self, rsa_key):
        rng = random.Random("pkg-size")
        blob_v1, blob_v2 = _random_package_pair(rng, rsa_key)
        envelope = build_package_delta(blob_manifest(blob_v1), blob_v2)
        assert envelope is not None
        assert len(envelope) < len(blob_v2)


# -- end-to-end scenario equivalence ------------------------------------------


def _mini_packages(count=6, payload=12 * 1024):
    """Random (incompressible) payloads: realistic blob sizes, so deltas
    genuinely beat full pulls instead of degenerating to not-smaller."""
    return [
        ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                   files=[PackageFile(
                       f"/usr/bin/pkg{i}",
                       random.Random(4000 + i).randbytes(payload))])
        for i in range(count)
    ]


def _delta_scenario(count=6):
    scenario = build_scenario(packages=_mini_packages(count=count),
                              with_monitor=False)
    scenario.tsr.record_publication(scenario.repo_id, 0.0)
    return scenario


def _publish_round(scenario, seed, fraction=0.5):
    rng = random.Random(f"delta-round:{seed}")
    batch = evolve_packages(scenario.population, fraction, rng)
    scenario.origin.publish_many([(package, None) for package in batch])
    for package in batch:
        scenario.population[package.name] = package
    scenario.sync_mirrors()
    scenario.refresh()
    scenario.tsr.record_publication(scenario.repo_id, scenario.clock.now())
    return [package.name for package in batch]


class TestEndToEndEquivalence:
    def test_delta_client_sees_full_client_bytes(self):
        scenario = _delta_scenario()
        _, full_mgr = scenario.new_node("full-client")
        _, delta_mgr = scenario.new_node("delta-client", delta_updates=True)

        # Round 0: cold caches — the delta client full-pulls ("no-base"),
        # then both clients install everything (the delta client's bases).
        assert full_mgr.update().to_bytes() == delta_mgr.update().to_bytes()
        assert delta_mgr.delta_stats.index_full == {"no-base": 1}
        for name in sorted(scenario.population):
            full_mgr.install(name)
            delta_mgr.install(name)

        # Rounds 1-2: warm bases — index and package deltas engage.
        for round_seed in (1, 2):
            changed = _publish_round(scenario, round_seed, fraction=0.4)
            full_index = full_mgr.update()
            delta_index = delta_mgr.update()
            assert delta_index.to_bytes() == full_index.to_bytes()
            name = changed[0]
            full_mgr.install(name)
            delta_mgr.install(name)
            full_rec = full_mgr._node.pkgdb.get(name)
            delta_rec = delta_mgr._node.pkgdb.get(name)
            assert delta_rec.content_hash == full_rec.content_hash
            assert delta_rec.version == full_rec.version
        assert delta_mgr.delta_stats.index_deltas == 2
        assert delta_mgr.delta_stats.package_deltas >= 1
        assert delta_mgr.delta_stats.index_rejected == 0
        assert delta_mgr.delta_stats.package_rejected == 0
        # The server counted the same story, and deltas saved real bytes.
        assert scenario.tsr.delta_index_serves == 2
        assert scenario.tsr.delta_package_serves >= 1
        assert scenario.tsr.delta_bytes_saved > 0

    def test_current_client_gets_unchanged_envelope(self):
        scenario = _delta_scenario()
        _, manager = scenario.new_node("steady", delta_updates=True)
        first = manager.update()
        second = manager.update()  # no new publication in between
        assert second.to_bytes() == first.to_bytes()
        assert manager.delta_stats.index_unchanged == 1
        assert scenario.tsr.delta_index_unchanged == 1

    def test_base_reuse_skips_the_wire_entirely(self):
        scenario = _delta_scenario()
        _, manager = scenario.new_node("reuser", delta_updates=True)
        manager.update()
        name = sorted(scenario.population)[0]
        manager.install(name)
        wire_before = manager.delta_stats.package_wire_bytes
        manager.uninstall(name)
        # Reinstalling the same version: the cached base *is* the target.
        manager.install(name)
        assert manager.delta_stats.base_reuses >= 1
        assert manager.delta_stats.package_wire_bytes == wire_before


# -- adversarial suite --------------------------------------------------------


def _tamper(scenario, operation, mutate):
    """Wrap the TSR host handler, mutating one operation's responses."""
    host = scenario.network.host(scenario.tsr.hostname)
    original = host.handler

    def tampering(op, payload):
        blob, size = original(op, payload)
        if op == operation:
            blob = mutate(blob)
            size = len(blob)
        return blob, size

    host.handler = tampering
    return original


class TestAdversarial:
    def test_tampered_index_delta_rejected_then_recovered(self):
        scenario = _delta_scenario()
        _, manager = scenario.new_node("victim", delta_updates=True)
        manager.update()
        _publish_round(scenario, seed=1)

        def corrupt(blob: bytes) -> bytes:
            # Flip a byte inside the first U: entry line: the spliced
            # body no longer matches the enclave signature.
            at = blob.index(b"\nU:") + 10
            return blob[:at] + bytes([blob[at] ^ 0x01]) + blob[at + 1:]

        original = _tamper(scenario, "get_index_delta", corrupt)
        index = manager.update()
        scenario.network.host(scenario.tsr.hostname).handler = original
        # Rejected, recovered via a verified full pull — never accepted.
        assert manager.delta_stats.index_rejected == 1
        assert manager.delta_stats.index_full.get("rejected") == 1
        assert index.to_bytes() == scenario.tsr.get_index_bytes(
            scenario.repo_id)

    def test_unparseable_index_delta_rejected(self):
        scenario = _delta_scenario()
        _, manager = scenario.new_node("victim", delta_updates=True)
        manager.update()
        _publish_round(scenario, seed=2)
        original = _tamper(scenario, "get_index_delta",
                           lambda blob: b"garbage\xff" + blob[:10])
        index = manager.update()
        scenario.network.host(scenario.tsr.hostname).handler = original
        assert manager.delta_stats.index_rejected == 1
        assert index.serial == RepositoryIndex.from_bytes(
            scenario.tsr.get_index_bytes(scenario.repo_id)).serial

    def test_stale_signed_delta_is_a_counted_rollback(self):
        """The rollback-attack oracle: a *correctly signed* delta whose
        target serial is not newer than the client's is refused before
        signature verification, and the client recovers on the full
        path."""
        scenario = _delta_scenario()
        _, manager = scenario.new_node("victim", delta_updates=True)
        _publish_round(scenario, seed=3)
        current = manager.update()
        old = RepositoryIndex.from_bytes(
            scenario.tsr.publications(scenario.repo_id)[0].index_bytes)
        assert old.serial < current.serial
        stale = build_index_delta(current, old)  # validly signed, older

        original = _tamper(scenario, "get_index_delta", lambda blob: stale)
        recovered = manager.update()
        scenario.network.host(scenario.tsr.hostname).handler = original
        assert manager.delta_stats.index_rollbacks == 1
        assert manager.delta_stats.index_full.get("rollback-rejected") == 1
        assert recovered.serial == current.serial  # never went backwards

    def test_rollback_raises_before_signature_is_consulted(self, rsa_key):
        base, target = _random_index_pair(random.Random("rb"), rsa_key)
        stale = parse_index_delta_envelope(build_index_delta(target, base))
        stale.signature = b"\x00" * 4  # nonsense sig: must not matter
        with pytest.raises(RollbackError):
            apply_index_delta(target, stale)

    def test_tampered_package_delta_rejected_then_recovered(self):
        scenario = _delta_scenario()
        _, manager = scenario.new_node("victim", delta_updates=True)
        manager.update()
        name = sorted(scenario.population)[0]
        manager.install(name)
        _publish_round(scenario, seed=4, fraction=1.0)
        manager.update()

        def corrupt(blob: bytes) -> bytes:
            kind, _, _ = parse_package_delta_envelope(blob)
            assert kind == "delta"  # the attack targets the delta path
            return blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:]

        original = _tamper(scenario, "get_package_delta", corrupt)
        manager.install(name)  # upgrade through the tampered channel
        scenario.network.host(scenario.tsr.hostname).handler = original
        assert manager.delta_stats.package_rejected == 1
        assert manager.delta_stats.package_full.get("rejected") == 1
        entry = manager.index.get(name)
        record = manager._node.pkgdb.get(name)
        assert record.content_hash == entry.sha256  # full-pull bytes won

    def test_client_beyond_log_depth_falls_back_cleanly(self):
        scenario = _delta_scenario()
        scenario.tsr.delta_log_depth = 1
        _, manager = scenario.new_node("laggard", delta_updates=True)
        manager.update()  # base: publication 0
        for seed in (5, 6, 7):
            _publish_round(scenario, seed)
        index = manager.update()  # 3 publications behind, depth bound 1
        assert manager.delta_stats.index_full.get("depth") == 1
        assert scenario.tsr.delta_index_fallbacks.get("depth") == 1
        assert index.serial == RepositoryIndex.from_bytes(
            scenario.tsr.get_index_bytes(scenario.repo_id)).serial

    def test_depth_zero_disables_delta_serving(self):
        scenario = _delta_scenario()
        scenario.tsr.delta_log_depth = 0
        _, manager = scenario.new_node("client", delta_updates=True)
        manager.update()
        _publish_round(scenario, seed=8)
        manager.update()
        assert manager.delta_stats.index_deltas == 0
        assert manager.delta_stats.index_full.get("disabled") == 1
        assert scenario.tsr.delta_index_fallbacks.get("disabled") == 1


# -- replay regression --------------------------------------------------------


class TestReplayRegression:
    def _replay(self, delta: bool):
        # installs_per_client covers the whole population: every client
        # holds every base after wave 1, so later waves upgrade via
        # deltas (mirroring a fleet tracking its distro's releases).
        trace = generate_trace(rounds=4, interval=0.6, publish_fraction=0.5,
                               seed=19, installs_per_client=4)
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  with_monitor=False)
        return replay_trace(scenario, trace, clients=4, mode="interleaved",
                            delta_updates=delta)

    def test_delta_replay_reproduces_full_replay_metrics(self):
        full = self._replay(delta=False)
        delta = self._replay(delta=True)
        # Structural outcomes are identical: deltas change bytes on the
        # wire, never what got installed or which serials landed.
        assert delta.installs == full.installs
        assert delta.failed_pulls == full.failed_pulls
        assert delta.failed_installs == full.failed_installs
        assert delta.publishes == full.publishes
        for name, timeline in full.timelines.items():
            assert [s for _, s in delta.timelines[name].transitions] \
                == [s for _, s in timeline.transitions]
        # Time metrics agree tightly (smaller transfers finish a hair
        # earlier; the staleness/availability story must not change).
        assert delta.staleness_mean == pytest.approx(full.staleness_mean,
                                                     rel=0.02)
        assert delta.availability_mean == pytest.approx(
            full.availability_mean, rel=0.02)
        # The first wave is cold (identical cost); later waves are where
        # deltas pay.
        assert delta.pull_wire_bytes[0] == full.pull_wire_bytes[0]
        assert delta.client_wire_bytes < full.client_wire_bytes
        assert sum(delta.pull_wire_bytes[1:]) \
            < 0.8 * sum(full.pull_wire_bytes[1:])
        assert delta.delta_stats["index_deltas"] > 0

    def test_two_delta_replays_reproducible_in_one_process(self):
        first = self._replay(delta=True)
        second = self._replay(delta=True)
        assert second.pull_wire_bytes == first.pull_wire_bytes
        assert second.delta_stats == first.delta_stats
        assert second.staleness_per_client == first.staleness_per_client
        assert second.installs == first.installs
        for name, timeline in first.timelines.items():
            assert second.timelines[name].transitions == timeline.transitions
