"""Multi-tenant refresh — phased-serial vs orchestrated (EXPERIMENTS §5).

A TSR hosting N tenant repositories with overlapping catalogs refreshes
them (a) the pre-orchestrator way — N phased refreshes back to back — and
(b) as one :class:`RefreshOrchestrator` plan: interleaved quorums,
cross-tenant download/scan/analysis dedupe, one serial enclave channel.
Verdicts and sanitized bytes are identical by construction (the
differential suite in ``tests/test_orchestrator.py`` pins it); this bench
measures what the plan buys in simulated wall-clock at 2 / 8 / 32 tenants
with a >= 50 % shared catalog core (``REPRO_TENANTS`` overrides the
sweep).  CI runs it as a smoke emitting ``BENCH_multi_tenant.json``.
"""

import os
import time

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

TENANT_SWEEP = tuple(
    int(n) for n in os.environ.get("REPRO_TENANTS", "2,8,32").split(",")
)
OVERLAP = 0.6
PACKAGES = 12


def _population():
    """Small fixed population; every third package creates accounts."""
    packages = []
    for i in range(PACKAGES):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=[PackageFile(f"/usr/bin/pkg{i}",
                               (b"\x7fELF" + bytes([i])) * 6000)],
        ))
    return packages


def _scenario(tenants: int):
    return build_multi_tenant_scenario(
        tenants=tenants, overlap=OVERLAP, packages=_population())


def test_multi_tenant_refresh_ablation(benchmark, maybe_profile):
    def sweep():
        results = {}
        for tenants in TENANT_SWEEP:
            serial = multi_tenant_refresh(_scenario(tenants),
                                          orchestrated=False)
            orchestrated = multi_tenant_refresh(_scenario(tenants))
            results[tenants] = (serial, orchestrated)
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("test_multi_tenant_refresh_ablation", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)

    table = PaperTable(
        experiment="Multi-tenant refresh",
        title="N-tenant refresh: phased-serial vs orchestrated "
              f"({int(OVERLAP * 100)}% catalog overlap)",
        columns=["tenants", "serial wall", "orchestrated wall", "speedup",
                 "deduped downloads", "bytes saved", "interleaved"],
    )
    for tenants, (serial, orchestrated) in results.items():
        speedup = serial.wall_elapsed / orchestrated.wall_elapsed
        table.add_row(
            tenants,
            human_duration(serial.wall_elapsed),
            human_duration(orchestrated.wall_elapsed),
            f"{speedup:.2f}x",
            orchestrated.downloads_deduped,
            orchestrated.dedupe_bytes_saved,
            orchestrated.interleaved_downloads,
        )
    table.note("same verdicts and byte-identical sanitized outputs in both "
               "modes (differential suite); the orchestrator interleaves "
               "all tenants' quorums and downloads on one schedule, dedupes "
               "shared blobs/scans/analyses across tenants, and serializes "
               "sanitization on the one enclave")
    record_table(table)

    for tenants, (serial, orchestrated) in results.items():
        # Verdict-level sanity (full byte-level equality is in the tests).
        assert {r: rep.serial for r, rep in serial.reports.items()} == \
            {r: rep.serial for r, rep in orchestrated.reports.items()}
        assert orchestrated.wall_elapsed < serial.wall_elapsed
        if tenants >= 2:
            assert orchestrated.downloads_deduped > 0
    if 8 in results:
        serial, orchestrated = results[8]
        # The acceptance headline: >= 1.5x at 8 tenants, >= 50 % overlap.
        assert serial.wall_elapsed / orchestrated.wall_elapsed >= 1.5
