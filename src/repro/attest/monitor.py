"""Remote integrity verification."""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.hashes import sha256_bytes
from repro.crypto.rsa import RsaPublicKey
from repro.ima.subsystem import (
    ImaMeasurement,
    replay_measurement_list,
    verify_ima_signature,
)
from repro.osim.os import AttestationEvidence, IntegrityEnforcedOS
from repro.tpm.device import IMA_PCR_INDEX, verify_quote
from repro.util.errors import AttestationError


@dataclass(frozen=True)
class Violation:
    """One file whose integrity could not be explained."""

    path: str
    reason: str


@dataclass
class VerificationReport:
    """Outcome of verifying one node's attestation evidence."""

    node_name: str
    quote_valid: bool
    log_matches_pcr: bool
    violations: list[Violation] = field(default_factory=list)

    @property
    def trusted(self) -> bool:
        return self.quote_valid and self.log_matches_pcr and not self.violations


def baseline_whitelist(*, init_config_files: dict[str, str] | None = None,
                       ) -> set[bytes]:
    """Hashes of the known-good initial OS state.

    Built by booting a pristine reference node (golden image) — exactly how
    operators produce attestation whitelists in practice.
    """
    reference = IntegrityEnforcedOS("golden-reference",
                                    init_config_files=init_config_files)
    reference.boot()
    return {entry.filedata_hash for entry in reference.ima.measurement_list()} | {
        sha256_bytes(b"")  # empty files are part of the baseline
    }


class MonitoringSystem:
    """Verifies fleets of remote nodes."""

    def __init__(self, whitelist: set[bytes] | None = None,
                 trusted_signing_keys: list[RsaPublicKey] | None = None):
        self.whitelist: set[bytes] = set(whitelist or set())
        self.trusted_signing_keys: list[RsaPublicKey] = list(
            trusted_signing_keys or []
        )
        self._known_nodes: dict[str, RsaPublicKey] = {}
        self._reports: list[VerificationReport] = []

    # -- fleet management ----------------------------------------------------

    def enroll_node(self, name: str, attestation_key: RsaPublicKey):
        """Record a node's TPM attestation key (provisioning step)."""
        self._known_nodes[name] = attestation_key

    def trust_key(self, key: RsaPublicKey):
        """Trust a signing key for file integrity (e.g. the TSR key,
        distributed through the Figure 7 protocol)."""
        self.trusted_signing_keys.append(key)

    def fresh_nonce(self) -> bytes:
        return secrets.token_bytes(16)

    # -- verification ----------------------------------------------------------

    def verify_node(self, node: IntegrityEnforcedOS,
                    nonce: bytes | None = None) -> VerificationReport:
        """Challenge a node and verify the evidence it returns."""
        nonce = nonce if nonce is not None else self.fresh_nonce()
        evidence = node.attest(nonce)
        return self.verify_evidence(evidence, nonce)

    def verify_evidence(self, evidence: AttestationEvidence,
                        nonce: bytes) -> VerificationReport:
        report = VerificationReport(
            node_name=evidence.node_name, quote_valid=False,
            log_matches_pcr=False,
        )
        expected_key = self._known_nodes.get(evidence.node_name)
        if expected_key is None:
            report.violations.append(Violation(
                path="<node>", reason="node not enrolled with the monitor"
            ))
            self._reports.append(report)
            return report
        if expected_key != evidence.attestation_key:
            report.violations.append(Violation(
                path="<node>", reason="attestation key does not match enrollment"
            ))
            self._reports.append(report)
            return report
        try:
            pcrs = verify_quote(evidence.quote, expected_key, nonce)
        except AttestationError as exc:
            report.violations.append(Violation(path="<quote>", reason=str(exc)))
            self._reports.append(report)
            return report
        report.quote_valid = True
        replayed = replay_measurement_list(evidence.ima_log)
        report.log_matches_pcr = replayed == pcrs.get(IMA_PCR_INDEX)
        if not report.log_matches_pcr:
            report.violations.append(Violation(
                path="<ima-log>",
                reason="measurement list does not replay to quoted PCR-10",
            ))
        for entry in evidence.ima_log:
            violation = self._appraise_entry(entry)
            if violation is not None:
                report.violations.append(violation)
        self._reports.append(report)
        return report

    def _appraise_entry(self, entry: ImaMeasurement) -> Violation | None:
        if entry.path == "boot_aggregate":
            return None  # covered by the quote's boot PCRs
        if entry.filedata_hash in self.whitelist:
            return None
        if entry.signature is not None and verify_ima_signature(
                entry.filedata_hash, entry.signature,
                self.trusted_signing_keys):
            return None
        if entry.signature is None:
            reason = "measurement not in whitelist and carries no signature"
        else:
            reason = "signature not issued by any trusted key"
        return Violation(path=entry.path, reason=reason)

    # -- fleet statistics ------------------------------------------------------

    def verification_history(self) -> list[VerificationReport]:
        return list(self._reports)

    def false_positive_rate(self) -> float:
        """Fraction of verifications that flagged violations — with
        un-sanitized updates this is the paper's headline problem."""
        if not self._reports:
            return 0.0
        flagged = sum(1 for report in self._reports if not report.trusted)
        return flagged / len(self._reports)
