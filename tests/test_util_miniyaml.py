"""Tests for the mini-YAML policy parser."""

import pytest

from repro.util.miniyaml import MiniYamlError, dump_yaml, parse_yaml


class TestScalars:
    def test_string(self):
        assert parse_yaml("name: alpine") == {"name": "alpine"}

    def test_quoted_string_keeps_specials(self):
        assert parse_yaml('name: "a: b # c"') == {"name": "a: b # c"}

    def test_int_and_float(self):
        doc = parse_yaml("a: 3\nb: 2.5")
        assert doc == {"a": 3, "b": 2.5}

    def test_bool_and_null(self):
        doc = parse_yaml("a: true\nb: false\nc: null\nd: ~")
        assert doc == {"a": True, "b": False, "c": None, "d": None}

    def test_inline_comment_stripped(self):
        assert parse_yaml("a: hello # trailing") == {"a": "hello"}

    def test_empty_document(self):
        assert parse_yaml("") == {}
        assert parse_yaml("# only a comment\n") == {}


class TestStructures:
    def test_nested_mapping(self):
        doc = parse_yaml("outer:\n  inner: 1\n  other: two")
        assert doc == {"outer": {"inner": 1, "other": "two"}}

    def test_sequence_of_scalars(self):
        doc = parse_yaml("items:\n  - one\n  - two")
        assert doc == {"items": ["one", "two"]}

    def test_sequence_of_mappings(self):
        text = "mirrors:\n  - hostname: a\n    region: eu\n  - hostname: b\n    region: us\n"
        doc = parse_yaml(text)
        assert doc["mirrors"] == [
            {"hostname": "a", "region": "eu"},
            {"hostname": "b", "region": "us"},
        ]

    def test_top_level_sequence(self):
        assert parse_yaml("- 1\n- 2\n") == [1, 2]

    def test_deeply_nested(self):
        text = "a:\n  b:\n    c:\n      - d: 1\n"
        assert parse_yaml(text) == {"a": {"b": {"c": [{"d": 1}]}}}


class TestBlockScalars:
    def test_literal_block_strip(self):
        text = "key: |-\n  line one\n  line two\n"
        assert parse_yaml(text) == {"key": "line one\nline two"}

    def test_literal_block_keeps_inner_blank_lines(self):
        text = "key: |-\n  a\n\n  b\n"
        assert parse_yaml(text) == {"key": "a\n\nb"}

    def test_literal_block_inside_sequence(self):
        text = "keys:\n  - |-\n    -----BEGIN KEY-----\n    abc\n    -----END KEY-----\n"
        doc = parse_yaml(text)
        assert doc["keys"][0] == "-----BEGIN KEY-----\nabc\n-----END KEY-----"

    def test_block_marker_with_comment(self):
        text = "key: |- # pem blob\n  data\n"
        assert parse_yaml(text) == {"key": "data"}

    def test_policy_listing_shape(self):
        """The Listing-1 policy shape from the paper parses cleanly."""
        text = (
            "mirrors:\n"
            "  - hostname: https://alpinelinux/v3.10/\n"
            "    certificate_chain: |-\n"
            "      -----BEGIN CERTIFICATE-----\n"
            "      AAA\n"
            "      -----END CERTIFICATE-----\n"
            "signers_keys:\n"
            "  - |-\n"
            "    -----BEGIN PUBLIC KEY-----\n"
            "    BBB\n"
            "    -----END PUBLIC KEY-----\n"
            "init_config_files:\n"
            "  - path: /etc/passwd\n"
            "    content: |-\n"
            "      root:x:0:0:root:/root:/bin/ash\n"
        )
        doc = parse_yaml(text)
        assert doc["mirrors"][0]["hostname"] == "https://alpinelinux/v3.10/"
        assert "BEGIN CERTIFICATE" in doc["mirrors"][0]["certificate_chain"]
        assert doc["signers_keys"][0].startswith("-----BEGIN PUBLIC KEY-----")
        assert doc["init_config_files"][0]["path"] == "/etc/passwd"
        assert doc["init_config_files"][0]["content"].startswith("root:x:0:0")


class TestErrors:
    def test_tab_indentation_rejected(self):
        with pytest.raises(MiniYamlError):
            parse_yaml("a:\n\tb: 1")

    def test_duplicate_key_rejected(self):
        with pytest.raises(MiniYamlError):
            parse_yaml("a: 1\na: 2")

    def test_missing_colon_rejected(self):
        with pytest.raises(MiniYamlError):
            parse_yaml("just a bare line")

    def test_error_carries_line_number(self):
        with pytest.raises(MiniYamlError) as excinfo:
            parse_yaml("ok: 1\nbroken line")
        assert excinfo.value.line == 2


class TestRoundTrip:
    def test_round_trip_mapping(self):
        doc = {"a": 1, "b": "text", "c": [1, 2], "d": {"e": None}}
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_round_trip_multiline(self):
        doc = {"pem": "-----BEGIN X-----\nabc\n-----END X-----"}
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_round_trip_sequence_of_mappings(self):
        doc = {"mirrors": [{"hostname": "a", "lat": 12.5}, {"hostname": "b", "lat": 3}]}
        assert parse_yaml(dump_yaml(doc)) == doc

    def test_round_trip_quoting(self):
        doc = {"tricky": "- leading dash", "numish": "12.5", "boolish": "true"}
        assert parse_yaml(dump_yaml(doc)) == doc
