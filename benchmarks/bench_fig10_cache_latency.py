"""Figure 10 — package download latency under three cache regimes.

Paper: with sanitized packages cached, downloads are ~129x faster than
with no cache; caching only the originals is ~2.7x faster than no cache
(the sanitization cost remains, only the mirror fetch is saved).

Regimes (per requested package):

* **Sanitized** — measured end to end: a node fetches through the TSR
  network endpoint; TSR reads the cached blob from disk and re-verifies it
  in-enclave (the real code path, simulated clock).
* **Original**  — disk read of the original + sanitization (the package's
  measured native time mapped through the SGX cost model) + serving.
* **None**      — mirror fetch over the simulated network + sanitization
  + serving.
"""

import random
import time

from repro.bench.report import PaperTable, record_table
from repro.simnet.latency import (
    LOCAL_DISK_BANDWIDTH_BYTES_PER_S,
    LOCAL_DISK_SEEK_S,
)
from repro.simnet.network import Request
from repro.util.stats import human_duration

_SAMPLE = 60


def _disk_read(size: int) -> float:
    return LOCAL_DISK_SEEK_S + size / LOCAL_DISK_BANDWIDTH_BYTES_PER_S


def test_fig10_cache_latency(content_scenario, benchmark):
    scenario = content_scenario
    results = scenario.refresh_report.results
    rng = random.Random(10)
    sample = rng.sample(results, min(_SAMPLE, len(results)))
    epc = scenario.tsr.epc_model

    def serve_all_sanitized():
        """TSR response time, as the paper measures it: disk read of the
        cached sanitized blob plus the in-enclave integrity re-check (the
        real compute is clocked into simulated time)."""
        latencies = []
        for result in sample:
            start = scenario.clock.now()
            wall = time.perf_counter()
            scenario.tsr.serve_package(scenario.repo_id, result.package.name)
            scenario.clock.advance(time.perf_counter() - wall)
            latencies.append(scenario.clock.now() - start)
        return latencies

    sanitized_lat = benchmark.pedantic(serve_all_sanitized, rounds=1,
                                       iterations=1)

    original_lat = []
    none_lat = []
    for result in sample:
        sanitize_time = epc.simulated_duration(result.timings.total,
                                               result.working_set_bytes)
        serve = _disk_read(result.sanitized_size)
        original_lat.append(
            _disk_read(result.original_size) + sanitize_time + serve
        )
        start = scenario.clock.now()
        scenario.network.call(
            "tsr.example",
            Request("mirror-eu-1.example", "get_package",
                    payload=result.package.name),
        )
        fetch = scenario.clock.now() - start
        none_lat.append(fetch + sanitize_time + serve)

    mean = lambda xs: sum(xs) / len(xs)
    speedup_sanitized = mean(none_lat) / mean(sanitized_lat)
    speedup_original = mean(none_lat) / mean(original_lat)

    table = PaperTable(
        experiment="Figure 10",
        title="Package download latency by cache regime (simulated)",
        columns=["cache regime", "measured mean", "paper speedup vs None",
                 "measured speedup vs None"],
    )
    table.add_row("None", human_duration(mean(none_lat)), "1x", "1x")
    table.add_row("Original", human_duration(mean(original_lat)), "2.7x",
                  f"{speedup_original:.1f}x")
    table.add_row("Sanitized", human_duration(mean(sanitized_lat)), "129x",
                  f"{speedup_sanitized:.0f}x")
    table.note(f"{len(sample)} packages sampled; means over one pass")
    table.note("the Original-cache speedup is smaller here than the "
               "paper's 2.7x because CPython sanitization dominates the "
               "saved mirror fetch; ordering and magnitudes reproduce")
    record_table(table)

    # Shape: strict ordering; sanitized-cache wins by orders of magnitude.
    assert mean(sanitized_lat) < mean(original_lat) < mean(none_lat)
    assert speedup_sanitized > 50
    assert 1.05 < speedup_original < 30
