"""Shared fixtures: deterministic RSA keys are expensive, so generate once."""

import pytest

from repro.crypto.rsa import generate_keypair

# 1024-bit keys keep unit tests fast; the bench suite uses 2048-bit keys so
# signatures are the paper's 256 bytes.
TEST_KEY_BITS = 1024


@pytest.fixture(scope="session")
def rsa_key():
    """A deterministic session-wide RSA key for signature tests."""
    return generate_keypair(TEST_KEY_BITS, seed=0xA11CE)


@pytest.fixture(scope="session")
def rsa_key_alt():
    """A second, distinct deterministic key (for wrong-key tests)."""
    return generate_keypair(TEST_KEY_BITS, seed=0xB0B)
