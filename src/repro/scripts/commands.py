"""Implementations of the commands installation scripts may use.

Each command is ``fn(host, args, stdin) -> (exit_code, stdout)``.  The set
mirrors what the paper found in Alpine maintainer scripts (Table 2):
filesystem utilities, text processing, account management (busybox
``adduser``/``addgroup``), shell activation, and the ``setfattr`` call
sanitized scripts use to install IMA signatures for predicted
configuration files.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.scripts import accounts
from repro.util.errors import FileSystemError, ScriptError

CommandFn = Callable[[object, list[str], str], tuple[int, str]]

#: Sentinel exit code: the interpreter turns this into an exit signal.
EXIT_REQUESTED = -255

PASSWD_PATH = "/etc/passwd"
SHADOW_PATH = "/etc/shadow"
GROUP_PATH = "/etc/group"
SHELLS_PATH = "/etc/shells"


def _split_flags(args: list[str], known: str) -> tuple[set[str], list[str]]:
    """Separate single-letter flags from positional operands."""
    flags: set[str] = set()
    positional: list[str] = []
    for arg in args:
        if arg.startswith("-") and len(arg) > 1 and not arg.startswith("--"):
            for letter in arg[1:]:
                if letter not in known:
                    raise ScriptError(f"unsupported flag -{letter}")
                flags.add(letter)
        else:
            positional.append(arg)
    return flags, positional


def _read_text(host, path: str) -> str:
    try:
        return host.read_file(path).decode()
    except FileSystemError as exc:
        raise ScriptError(str(exc)) from exc


# -- trivial commands -------------------------------------------------------

def cmd_true(_host, _args, _stdin):
    return 0, ""


def cmd_false(_host, _args, _stdin):
    return 1, ""


def cmd_exit(_host, args, _stdin):
    code = args[0] if args else "0"
    return EXIT_REQUESTED, code


def cmd_echo(_host, args, _stdin):
    if args and args[0] == "-n":
        return 0, " ".join(args[1:])
    return 0, " ".join(args) + "\n"


def cmd_test(host, args, _stdin):
    if args and args[-1] == "]":
        args = args[:-1]
    if not args:
        return 1, ""
    if len(args) == 2 and args[0] in ("-f", "-d", "-e", "-x", "-n", "-z"):
        flag, operand = args
        checks = {
            "-f": lambda: host.isfile(operand),
            "-d": lambda: host.isdir(operand),
            "-e": lambda: host.exists(operand),
            "-x": lambda: host.exists(operand),
            "-n": lambda: operand != "",
            "-z": lambda: operand == "",
        }
        return (0 if checks[flag]() else 1), ""
    if len(args) == 3 and args[1] in ("=", "!="):
        equal = args[0] == args[2]
        wanted = args[1] == "="
        return (0 if equal == wanted else 1), ""
    if len(args) == 1:
        return (0 if args[0] else 1), ""
    raise ScriptError(f"unsupported test expression: {' '.join(args)}")


# -- filesystem utilities ---------------------------------------------------

def cmd_mkdir(host, args, _stdin):
    flags, paths = _split_flags(args, "p")
    if not paths:
        raise ScriptError("mkdir: missing operand")
    for path in paths:
        if "p" in flags and host.isdir(path):
            continue
        host.mkdir(path, parents="p" in flags)
    return 0, ""


def cmd_rmdir(host, args, _stdin):
    _, paths = _split_flags(args, "")
    for path in paths:
        if not host.isdir(path):
            raise ScriptError(f"rmdir: {path} is not a directory")
        host.remove(path)
    return 0, ""


def cmd_rm(host, args, _stdin):
    flags, paths = _split_flags(args, "rf")
    if not paths:
        raise ScriptError("rm: missing operand")
    for path in paths:
        if not host.exists(path):
            if "f" in flags:
                continue
            raise ScriptError(f"rm: {path}: no such file")
        host.remove(path, recursive="r" in flags)
    return 0, ""


def cmd_mv(host, args, _stdin):
    _, paths = _split_flags(args, "f")
    if len(paths) != 2:
        raise ScriptError("mv: expected source and destination")
    host.rename(paths[0], paths[1])
    return 0, ""


def cmd_cp(host, args, _stdin):
    _, paths = _split_flags(args, "af")
    if len(paths) != 2:
        raise ScriptError("cp: expected source and destination")
    host.write_file(paths[1], host.read_file(paths[0]))
    return 0, ""


def cmd_ln(host, args, _stdin):
    flags, paths = _split_flags(args, "sf")
    if "s" not in flags:
        raise ScriptError("ln: only symbolic links are supported")
    if len(paths) != 2:
        raise ScriptError("ln: expected target and link name")
    target, link = paths
    if "f" in flags and host.exists(link):
        host.remove(link)
    host.symlink(target, link)
    return 0, ""


def cmd_chmod(host, args, _stdin):
    _, operands = _split_flags(args, "R")
    if len(operands) < 2:
        raise ScriptError("chmod: expected mode and path")
    mode_text, *paths = operands
    try:
        mode = int(mode_text, 8)
    except ValueError:
        raise ScriptError(f"chmod: unsupported mode {mode_text!r}") from None
    for path in paths:
        host.chmod(path, mode)
    return 0, ""


def cmd_touch(host, args, _stdin):
    _, paths = _split_flags(args, "")
    if not paths:
        raise ScriptError("touch: missing operand")
    for path in paths:
        host.touch(path)
    return 0, ""


def cmd_install(host, args, _stdin):
    """busybox install: copy with an explicit mode (-m)."""
    mode = None
    positional: list[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg == "-m":
            mode = int(next(iterator, "644"), 8)
        elif arg == "-D":
            continue
        elif arg.startswith("-"):
            raise ScriptError(f"install: unsupported flag {arg}")
        else:
            positional.append(arg)
    if len(positional) != 2:
        raise ScriptError("install: expected source and destination")
    src, dst = positional
    host.write_file(dst, host.read_file(src), mode=mode)
    return 0, ""


def cmd_setfattr(host, args, _stdin):
    """setfattr -n <name> -v <value> <path>; values may be 0x-hex."""
    name = value = path = None
    iterator = iter(args)
    for arg in iterator:
        if arg == "-n":
            name = next(iterator, None)
        elif arg == "-v":
            value = next(iterator, None)
        else:
            path = arg
    if not (name and value is not None and path):
        raise ScriptError("setfattr: expected -n name -v value path")
    raw = bytes.fromhex(value[2:]) if value.startswith("0x") else value.encode()
    host.set_xattr(path, name, raw)
    return 0, ""


# -- text processing ----------------------------------------------------------

def cmd_cat(host, args, stdin):
    _, paths = _split_flags(args, "")
    if not paths:
        return 0, stdin
    return 0, "".join(_read_text(host, path) for path in paths)


def cmd_grep(host, args, stdin):
    flags, operands = _split_flags(args, "qvc")
    if not operands:
        raise ScriptError("grep: missing pattern")
    pattern, *paths = operands
    text = "".join(_read_text(host, p) for p in paths) if paths else stdin
    try:
        regex = re.compile(pattern)
    except re.error as exc:
        raise ScriptError(f"grep: bad pattern {pattern!r}: {exc}") from exc
    matched = [line for line in text.splitlines() if regex.search(line)]
    if "v" in flags:
        matched = [line for line in text.splitlines() if not regex.search(line)]
    code = 0 if matched else 1
    if "q" in flags:
        return code, ""
    if "c" in flags:
        return code, f"{len(matched)}\n"
    return code, "".join(line + "\n" for line in matched)


def cmd_sed(host, args, stdin):
    in_place = False
    positional: list[str] = []
    for arg in args:
        if arg == "-i":
            in_place = True
        elif arg == "-e":
            continue
        elif arg.startswith("-"):
            raise ScriptError(f"sed: unsupported flag {arg}")
        else:
            positional.append(arg)
    if not positional:
        raise ScriptError("sed: missing expression")
    expression, *paths = positional
    match = re.fullmatch(r"s([/#|])(.*?)\1(.*?)\1(g?)", expression)
    if match is None:
        raise ScriptError(f"sed: unsupported expression {expression!r}")
    _, pattern, replacement, global_flag = match.groups()
    count = 0 if global_flag else 1
    replacement = replacement.replace("\\1", r"\1").replace("&", r"\g<0>")

    def transform(text: str) -> str:
        return "\n".join(
            re.sub(pattern, replacement, line, count=count)
            for line in text.split("\n")
        )

    if in_place:
        if not paths:
            raise ScriptError("sed -i: missing file operand")
        for path in paths:
            host.write_file(path, transform(_read_text(host, path)).encode())
        return 0, ""
    source = "".join(_read_text(host, p) for p in paths) if paths else stdin
    return 0, transform(source)


def cmd_cut(_host, args, stdin):
    delimiter = "\t"
    fields_spec = None
    iterator = iter(args)
    for arg in iterator:
        if arg == "-d":
            delimiter = next(iterator, "\t")
        elif arg.startswith("-d"):
            delimiter = arg[2:]
        elif arg == "-f":
            fields_spec = next(iterator, None)
        elif arg.startswith("-f"):
            fields_spec = arg[2:]
        else:
            raise ScriptError(f"cut: unsupported operand {arg!r}")
    if fields_spec is None:
        raise ScriptError("cut: missing -f")
    wanted = [int(f) - 1 for f in fields_spec.split(",")]
    out_lines = []
    for line in stdin.splitlines():
        parts = line.split(delimiter)
        out_lines.append(delimiter.join(
            parts[i] for i in wanted if 0 <= i < len(parts)
        ))
    return 0, "".join(line + "\n" for line in out_lines)


def cmd_head(host, args, stdin):
    lines = 10
    paths: list[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg == "-n":
            lines = int(next(iterator, "10"))
        elif arg.startswith("-n"):
            lines = int(arg[2:])
        elif arg.startswith("-"):
            raise ScriptError(f"head: unsupported flag {arg}")
        else:
            paths.append(arg)
    text = "".join(_read_text(host, p) for p in paths) if paths else stdin
    kept = text.splitlines()[:lines]
    return 0, "".join(line + "\n" for line in kept)


def cmd_wc(_host, args, stdin):
    flags, _ = _split_flags(args, "l")
    if "l" not in flags:
        raise ScriptError("wc: only -l is supported")
    return 0, f"{len(stdin.splitlines())}\n"


# -- account management -------------------------------------------------------

def cmd_adduser(host, args, _stdin):
    """busybox adduser subset: -S -D -H -h home -s shell -G group -u uid."""
    spec_kwargs, primary_group = accounts.parse_adduser_args(args)
    group_text = _read_text(host, GROUP_PATH)
    if primary_group is not None:
        groups = accounts.parse_group(group_text)
        if primary_group not in groups:
            group_text = accounts.add_group(
                group_text, accounts.GroupSpec(name=primary_group)
            )
            groups = accounts.parse_group(group_text)
        spec_kwargs["gid"] = int(groups[primary_group][2])
    spec = accounts.UserSpec(**spec_kwargs)
    passwd_text, shadow_text, group_text = accounts.add_user(
        _read_text(host, PASSWD_PATH),
        _read_text(host, SHADOW_PATH),
        group_text,
        spec,
    )
    host.write_file(PASSWD_PATH, passwd_text.encode())
    host.write_file(SHADOW_PATH, shadow_text.encode())
    host.write_file(GROUP_PATH, group_text.encode())
    return 0, ""


def cmd_addgroup(host, args, _stdin):
    """busybox addgroup subset: -S -g gid [user] group."""
    gid, positional = accounts.parse_addgroup_args(args)
    group_text = _read_text(host, GROUP_PATH)
    if len(positional) == 1:
        spec = accounts.GroupSpec(name=positional[0], gid=gid)
        host.write_file(GROUP_PATH, accounts.add_group(group_text, spec).encode())
        return 0, ""
    if len(positional) == 2:
        # addgroup user group: append user to the group's member list.
        user, group = positional
        groups = accounts.parse_group(group_text)
        if group not in groups:
            group_text = accounts.add_group(group_text,
                                            accounts.GroupSpec(name=group, gid=gid))
            groups = accounts.parse_group(group_text)
        fields = groups[group]
        members = [m for m in fields[3].split(",") if m]
        if user not in members:
            members.append(user)
        fields[3] = ",".join(members)
        lines = []
        for line in group_text.splitlines():
            if line.split(":", 1)[0] == group:
                lines.append(":".join(fields))
            else:
                lines.append(line)
        host.write_file(GROUP_PATH, ("\n".join(lines) + "\n").encode())
        return 0, ""
    raise ScriptError("addgroup: expected [user] group")


def cmd_passwd(host, args, _stdin):
    flags, operands = _split_flags(args, "d")
    if "d" not in flags or len(operands) != 1:
        raise ScriptError("passwd: only 'passwd -d user' is supported")
    shadow_text = accounts.set_password(_read_text(host, SHADOW_PATH),
                                        operands[0], "")
    host.write_file(SHADOW_PATH, shadow_text.encode())
    return 0, ""


def cmd_add_shell(host, args, _stdin):
    if len(args) != 1:
        raise ScriptError("add-shell: expected exactly one shell path")
    shell = args[0]
    existing = _read_text(host, SHELLS_PATH) if host.exists(SHELLS_PATH) else ""
    if shell not in existing.splitlines():
        host.write_file(SHELLS_PATH, (existing + shell + "\n").encode())
    return 0, ""


def cmd_remove_shell(host, args, _stdin):
    if len(args) != 1:
        raise ScriptError("remove-shell: expected exactly one shell path")
    existing = _read_text(host, SHELLS_PATH) if host.exists(SHELLS_PATH) else ""
    kept = [line for line in existing.splitlines() if line != args[0]]
    host.write_file(SHELLS_PATH, ("\n".join(kept) + "\n").encode() if kept else b"")
    return 0, ""


_COMMANDS: dict[str, CommandFn] = {
    "true": cmd_true,
    ":": cmd_true,
    "false": cmd_false,
    "exit": cmd_exit,
    "echo": cmd_echo,
    "test": cmd_test,
    "[": cmd_test,
    "mkdir": cmd_mkdir,
    "rmdir": cmd_rmdir,
    "rm": cmd_rm,
    "mv": cmd_mv,
    "cp": cmd_cp,
    "ln": cmd_ln,
    "chmod": cmd_chmod,
    "touch": cmd_touch,
    "install": cmd_install,
    "setfattr": cmd_setfattr,
    "cat": cmd_cat,
    "grep": cmd_grep,
    "sed": cmd_sed,
    "cut": cmd_cut,
    "head": cmd_head,
    "wc": cmd_wc,
    "adduser": cmd_adduser,
    "addgroup": cmd_addgroup,
    "passwd": cmd_passwd,
    "add-shell": cmd_add_shell,
    "remove-shell": cmd_remove_shell,
}


def lookup(name: str) -> CommandFn | None:
    """Resolve a command name; None means unsupported."""
    return _COMMANDS.get(name)


def supported_commands() -> list[str]:
    return sorted(_COMMANDS)
