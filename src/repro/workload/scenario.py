"""End-to-end scenario builder: repository, mirrors, TSR, nodes, monitor.

One call assembles the whole Figure-6 deployment so examples, integration
tests, and benches share identical wiring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attest.monitor import MonitoringSystem, baseline_whitelist
from repro.core.cache import PackageCache
from repro.core.client import TsrRepositoryClient
from repro.core.orchestrator import MultiTenantRefreshReport, RefreshOrchestrator
from repro.core.policy import SecurityPolicy, MirrorPolicyEntry
from repro.core.service import RefreshReport, TrustedSoftwareRepository
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.ima.subsystem import AppraisalMode
from repro.mirrors.builder import MirrorSpec, build_mirror_network, sync_all
from repro.mirrors.mirror import Mirror
from repro.mirrors.repository import OriginalRepository
from repro.osim.os import IntegrityEnforcedOS
from repro.osim.pkgmgr import PackageManager
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EpcModel
from repro.sgx.platform import AttestationService, SgxCpu
from repro.simnet.latency import Continent
from repro.simnet.network import Host, Network, ScheduledFetchSession
from repro.tpm.device import Tpm
from repro.util.errors import PackageManagerError
from repro.workload.generator import GeneratedWorkload

DEFAULT_MIRROR_SPECS = (
    MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
    MirrorSpec("mirror-eu-2.example", Continent.EUROPE),
    MirrorSpec("mirror-na-1.example", Continent.NORTH_AMERICA),
)


@dataclass
class Scenario:
    """A fully wired deployment."""

    network: Network
    origin: OriginalRepository
    mirrors: dict[str, Mirror]
    tsr: TrustedSoftwareRepository
    attestation_service: AttestationService
    distro_key: RsaPrivateKey
    policy: SecurityPolicy
    repo_id: str
    tsr_public_key: RsaPublicKey
    refresh_report: RefreshReport | None = None
    monitor: MonitoringSystem | None = None
    nodes: dict[str, IntegrityEnforcedOS] = field(default_factory=dict)
    workload: GeneratedWorkload | None = None
    #: Latest published release of every package (name -> ApkPackage);
    #: multi-round traces evolve this population release by release.
    population: dict[str, object] = field(default_factory=dict)
    #: Every deployed repository id, in deployment order (the first is
    #: ``repo_id``, the default tenant).
    tenants: list[str] = field(default_factory=list)
    #: repo_id -> that tenant's attested public signing key.
    tenant_keys: dict[str, RsaPublicKey] = field(default_factory=dict)
    _node_count: int = 0

    @property
    def clock(self):
        return self.network.clock

    # -- node management -----------------------------------------------------

    def new_node(self, name: str | None = None,
                 continent: Continent = Continent.EUROPE,
                 appraisal: AppraisalMode = AppraisalMode.OFF,
                 use_tsr: bool = True,
                 session: ScheduledFetchSession | None = None,
                 downlink_bandwidth: float | None = None,
                 repo_id: str | None = None,
                 delta_updates: bool = False,
                 tpm_attestation_seed: int | None = None,
                 ) -> tuple[IntegrityEnforcedOS, PackageManager]:
        """Boot a node and attach a package manager (TSR or mirror-direct).

        ``session`` routes the node's fetches onto a fleet-wide transfer
        schedule (see :func:`fleet_refresh`) instead of the per-call clock.
        ``downlink_bandwidth`` models the node's NIC: on a scheduled
        session the node's channel is capped at it (layered under the
        shared-uplink fair share).  ``repo_id`` picks the tenant
        repository the node subscribes to (default: the scenario's
        primary tenant).  ``delta_updates`` turns on the manager's
        delta-update path (index diffs + chunked package patches).
        ``tpm_attestation_seed`` makes this node share a (memoized)
        attestation keypair with every other node built from the same
        seed — see :class:`~repro.tpm.device.Tpm`.
        """
        self._node_count += 1
        name = name or f"node-{self._node_count:03d}"
        node = IntegrityEnforcedOS(
            name, appraisal=appraisal,
            vendor_key=self.distro_key,
            init_config_files=self.policy.init_config_files,
            tpm_attestation_seed=tpm_attestation_seed,
        )
        node.boot()
        self.network.add_host(Host(name=name, continent=continent,
                                   downlink_bandwidth=downlink_bandwidth))
        if use_tsr:
            tenant = repo_id if repo_id is not None else self.repo_id
            key = self.tenant_keys.get(tenant, self.tsr_public_key)
            client = TsrRepositoryClient(self.network, name,
                                         self.tsr.hostname, tenant,
                                         session=session)
            trusted = [key]
            node.ima.trust_key(key)
        else:
            from repro.core.client import MirrorRepositoryClient
            first_mirror = next(iter(self.mirrors))
            client = MirrorRepositoryClient(self.network, name, first_mirror,
                                            session=session)
            trusted = [self.distro_key.public_key]
        manager = PackageManager(node, client, trusted_keys=trusted,
                                 delta_updates=delta_updates)
        self.nodes[name] = node
        if self.monitor is not None:
            self.monitor.enroll_node(name, node.tpm.attestation_public_key)
        return node, manager

    def sync_mirrors(self):
        sync_all(self.mirrors)

    # -- tenants --------------------------------------------------------------

    def add_tenant(self, policy: SecurityPolicy | None = None, *,
                   package_whitelist=None,
                   init_config_files: dict[str, str] | None = None) -> str:
        """Deploy one more tenant repository on the shared TSR.

        Builds a policy over the scenario's existing mirror set (unless an
        explicit ``policy`` is given), deploys it, and verifies the
        attestation quote before trusting the returned key — the same
        onboarding flow as the primary tenant.  Returns the new repo id.
        """
        if policy is None:
            kwargs = {}
            if init_config_files is not None:
                kwargs["init_config_files"] = dict(init_config_files)
            policy = SecurityPolicy(
                mirrors=list(self.policy.mirrors),
                signers_keys=[self.distro_key.public_key],
                package_whitelist=(frozenset(package_whitelist)
                                   if package_whitelist is not None else None),
                **kwargs,
            )
        deployed = self.tsr.deploy_policy(policy.to_yaml())
        deployed["quote"].verify(
            self.attestation_service,
            expected_mrenclave=self.tsr._enclave.mrenclave,
        )
        repo_id = deployed["repo_id"]
        self.tenants.append(repo_id)
        self.tenant_keys[repo_id] = RsaPublicKey.from_pem(
            deployed["public_key_pem"])
        return repo_id

    def refresh(self, pipelined: bool = False,
                max_streams: int | None = None,
                parallel_downloads: int = 1) -> RefreshReport:
        self.refresh_report = self.tsr.refresh(
            self.repo_id, parallel_downloads=parallel_downloads,
            pipelined=pipelined, max_streams=max_streams,
        )
        return self.refresh_report


def default_policy(mirror_specs, distro_public: RsaPublicKey,
                   package_whitelist=None) -> SecurityPolicy:
    return SecurityPolicy(
        mirrors=[
            MirrorPolicyEntry(hostname=spec.name, continent=spec.continent)
            for spec in mirror_specs
        ],
        signers_keys=[distro_public],
        package_whitelist=(frozenset(package_whitelist)
                           if package_whitelist is not None else None),
    )


def build_scenario(workload: GeneratedWorkload | None = None,
                   packages: list | None = None,
                   mirror_specs=DEFAULT_MIRROR_SPECS,
                   key_bits: int = 1024,
                   tsr_key_bits: int | None = None,
                   sgx_enabled: bool = True,
                   epc_bytes: int | None = None,
                   refresh: bool = True,
                   with_monitor: bool = True,
                   seed: int = 99,
                   package_whitelist=None,
                   cache_budget_bytes: int | None = None,
                   cache_shards: int | None = None,
                   cache_policy: str | None = None) -> Scenario:
    """Assemble origin + mirrors + TSR (+ monitor), deploy the default
    policy, and optionally run the first refresh.

    ``package_whitelist`` restricts the default tenant's policy;
    ``cache_budget_bytes``/``cache_shards``/``cache_policy`` configure
    the TSR package cache (per-shard byte budgets and LRU/LRU-2 eviction
    — see :class:`PackageCache`).
    """
    network = Network()
    distro_key = generate_keypair(key_bits, seed=seed)
    origin = OriginalRepository(distro_key)
    to_publish = list(packages or (workload.packages if workload else []))
    if to_publish:
        origin.publish_many([(package, None) for package in to_publish])
    mirrors = build_mirror_network(origin, list(mirror_specs), network)
    sync_all(mirrors)

    attestation_service = AttestationService()
    cpu = SgxCpu("tsr-cpu-01", attestation_service, key_bits=key_bits)
    tpm = Tpm("tpm-tsr-host", key_bits=key_bits)
    if epc_bytes is None and workload is not None:
        epc_bytes = workload.suggested_epc_bytes
    cache = None
    if (cache_budget_bytes is not None or cache_shards is not None
            or cache_policy is not None):
        cache = PackageCache(
            shards=cache_shards if cache_shards is not None else 8,
            shard_budget_bytes=cache_budget_bytes,
            policy=cache_policy if cache_policy is not None else "lru2",
        )
    tsr = TrustedSoftwareRepository(
        "tsr.example", network, cpu, tpm,
        key_bits=tsr_key_bits or key_bits, sgx_enabled=sgx_enabled,
        epc_model=EpcModel(epc_bytes=epc_bytes) if epc_bytes else None,
        cache=cache,
    )
    policy = default_policy(mirror_specs, distro_key.public_key,
                            package_whitelist=package_whitelist)
    deployed = tsr.deploy_policy(policy.to_yaml())
    deployed["quote"].verify(attestation_service,
                             expected_mrenclave=tsr._enclave.mrenclave)
    repo_id = deployed["repo_id"]
    tsr_public_key = RsaPublicKey.from_pem(deployed["public_key_pem"])

    monitor = None
    if with_monitor:
        monitor = MonitoringSystem(
            whitelist=baseline_whitelist(
                init_config_files=policy.init_config_files
            ),
            trusted_signing_keys=[tsr_public_key, distro_key.public_key],
        )

    scenario = Scenario(
        network=network,
        origin=origin,
        mirrors=mirrors,
        tsr=tsr,
        attestation_service=attestation_service,
        distro_key=distro_key,
        policy=policy,
        repo_id=repo_id,
        tsr_public_key=tsr_public_key,
        monitor=monitor,
        workload=workload,
        population={package.name: package for package in to_publish},
        tenants=[repo_id],
        tenant_keys={repo_id: tsr_public_key},
    )
    if refresh and to_publish:
        scenario.refresh()
    return scenario


def build_multi_tenant_scenario(tenants: int = 2, overlap: float = 0.5,
                                workload: GeneratedWorkload | None = None,
                                packages: list | None = None,
                                mirror_specs=DEFAULT_MIRROR_SPECS,
                                key_bits: int = 1024,
                                cache_budget_bytes: int | None = None,
                                cache_shards: int | None = None,
                                cache_policy: str | None = None,
                                seed: int = 99) -> Scenario:
    """N tenant repositories over one origin with overlapping catalogs.

    ``overlap`` is the fraction of the published package population every
    tenant shares (the common core); the remainder is partitioned
    round-robin into per-tenant exclusive slices.  Tenant whitelists are
    ``core + slice_i``, so any two tenants overlap in at least the core —
    the workload shape the cross-tenant dedupe of
    :func:`multi_tenant_refresh` exploits.  No refresh is run.
    """
    if tenants < 1:
        raise ValueError("need at least one tenant")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be within [0, 1]: {overlap}")
    to_publish = list(packages or (workload.packages if workload else []))
    if not to_publish:
        raise ValueError("multi-tenant scenario needs published packages")
    names = [package.name for package in to_publish]
    core_count = round(overlap * len(names))
    core = names[:core_count]
    rest = names[core_count:]
    slices = [rest[i::tenants] for i in range(tenants)]

    scenario = build_scenario(
        workload=workload, packages=packages, mirror_specs=mirror_specs,
        key_bits=key_bits, refresh=False, with_monitor=False, seed=seed,
        package_whitelist=frozenset(core + slices[0]),
        cache_budget_bytes=cache_budget_bytes, cache_shards=cache_shards,
        cache_policy=cache_policy,
    )
    for i in range(1, tenants):
        scenario.add_tenant(package_whitelist=frozenset(core + slices[i]))
    return scenario


def multi_tenant_refresh(scenario: Scenario,
                         repo_ids: list[str] | None = None,
                         orchestrated: bool = True,
                         max_streams: int | None = None,
                         interleave: bool = True) -> MultiTenantRefreshReport:
    """Refresh several tenant repositories of one TSR.

    ``orchestrated`` (default) plans all refreshes as one
    :class:`repro.core.orchestrator.RefreshOrchestrator` schedule —
    interleaved quorums, cross-tenant download/scan/analysis dedupe, one
    serial enclave channel.  ``orchestrated=False`` is the baseline the
    ablation measures: the N phased refreshes run serially, exactly as N
    separate ``tsr.refresh(repo_id)`` calls — same verdicts and
    byte-identical sanitized outputs, vastly different wall-clock
    (EXPERIMENTS.md §5).
    """
    repo_ids = list(repo_ids if repo_ids is not None else scenario.tenants)
    if orchestrated:
        return RefreshOrchestrator(
            scenario.tsr, repo_ids, max_streams=max_streams,
            interleave=interleave,
        ).run()
    start = scenario.clock.now()
    reports = {
        repo_id: scenario.tsr.refresh(repo_id) for repo_id in repo_ids
    }
    return MultiTenantRefreshReport(
        reports=reports,
        wall_elapsed=scenario.clock.now() - start,
        orchestrated=False,
    )


@dataclass
class FleetClient:
    """One fleet node: OS + package manager bound to a tenant repository."""

    name: str
    repo_id: str
    node: IntegrityEnforcedOS
    manager: PackageManager


class ClientFleet:
    """N update clients wired for scheduled fan-out, reusable across waves.

    Construction boots the nodes once (names ``{prefix}-{i:03d}``), wires
    their package managers onto ``session`` (a
    :class:`~repro.simnet.network.ScheduledFetchSession` for a one-shot
    fan-out, a :class:`~repro.simnet.network.PlanFetchSession` for
    multi-wave replay, or ``None`` for clock-serialized clients) and
    spreads them round-robin over ``tenants``.  ``client_downlink``
    models per-node NICs exactly as in :func:`fleet_refresh` (scalar, or
    a sequence cycled across the fleet).

    ``lazy=True`` defers every boot: a node comes up the first time
    :meth:`client` asks for its index (same name, tenant, and NIC it
    would have had eagerly — booting is per-node deterministic, so boot
    *order* cannot change behaviour) and :meth:`retire` tears it down
    once a rotation schedule guarantees it will never pull again.  A
    10^5-client fleet then only ever holds the active wave's nodes.

    ``shared_tpm_seed`` gives every node the same (memoized) TPM
    attestation keypair, turning 10^5 prime searches into one.  Update
    and transfer metrics never touch the attestation key, so replay
    results are unchanged; leave it ``None`` for attestation experiments
    where per-node identity matters.

    ``replicas`` spreads the fleet's *delta* traffic over an edge-replica
    tier (:class:`repro.core.replica.ReplicaTSR`): each client hashes by
    name onto one replica and keeps that assignment for life, so its
    delta bases stay wherever its serving history is warm.  Replicas that
    fail a wave's freshness check are denied via
    :meth:`set_replica_refusals` and their clients pull from the primary
    until the replica passes again.
    """

    def __init__(self, scenario: Scenario, clients: int,
                 name_prefix: str = "fleet",
                 session=None, client_downlink=None,
                 tenants: list[str] | None = None,
                 delta_updates: bool = False,
                 lazy: bool = False,
                 shared_tpm_seed: int | None = None,
                 replicas=None):
        if clients < 1:
            raise ValueError("fleet needs at least one client")
        if (client_downlink is not None
                and not isinstance(client_downlink, (int, float))
                and not len(client_downlink)):
            raise ValueError("client_downlink sequence must be non-empty")
        self.scenario = scenario
        self.size = clients
        self.lazy = lazy
        self._prefix = name_prefix
        self._session = session
        self._client_downlink = client_downlink
        self._tenants = list(tenants) if tenants else [scenario.repo_id]
        self._delta_updates = delta_updates
        self._shared_tpm_seed = shared_tpm_seed
        self._replicas = list(replicas) if replicas else []
        self._replica_denied: set[str] = set()
        self._as_of: float | None = None
        self._by_index: dict[int, FleetClient] = {}
        self._booted_total = 0
        self._retired_delta_stats = None
        if not lazy:
            self.prewarm_boots()
            for i in range(clients):
                self._boot(i)

    @property
    def clients(self) -> list[FleetClient]:
        """The currently booted clients, in index order."""
        return [self._by_index[i] for i in sorted(self._by_index)]

    def _boot(self, i: int) -> FleetClient:
        name = f"{self._prefix}-{i:03d}"
        repo_id = self._tenants[i % len(self._tenants)]
        node, manager = self.scenario.new_node(
            name, session=self._session, repo_id=repo_id,
            downlink_bandwidth=self._nic(self._client_downlink, i),
            delta_updates=self._delta_updates,
            tpm_attestation_seed=self._shared_tpm_seed)
        manager.client.as_of = self._as_of
        replica = self._replica_for(name)
        if replica is not None:
            manager.client.replica_host = (
                None if replica.hostname in self._replica_denied
                else replica.hostname)
        client = FleetClient(name=name, repo_id=repo_id,
                             node=node, manager=manager)
        self._by_index[i] = client
        self._booted_total += 1
        return client

    def prewarm_boots(self, indices=None) -> None:
        """Run pending boots' attestation prime searches on the host pool
        (no-op when the pool is off or everything is already booted).
        ``indices`` restricts the warm-up to the clients an upcoming wave
        will actually boot — a lazy 10^5-client fleet must not prime the
        whole roster for one wave's subset."""
        from repro.util.hostpool import get_pool
        pool = get_pool()
        if pool is None:
            return
        from repro.crypto.rsa import keypair_batch
        keypair_batch(self.pending_boot_keypair_specs(indices), pool=pool)

    def pending_boot_keypair_specs(self, indices=None) -> list[tuple[int, int]]:
        """``(bits, seed)`` attestation-keypair specs for every client not
        yet booted (optionally restricted to ``indices``) — the prime
        searches an upcoming wave will trigger.  A host pool runs them on
        workers (``keypair_batch``) so the boots then splice memoized
        keys; the derivation mirrors :meth:`Tpm.attestation_key_spec`, so
        results are identical."""
        if self._shared_tpm_seed is not None:
            if self._booted_total:
                return []  # the shared key was memoized at first boot
            return [Tpm.attestation_key_spec(
                "", attestation_seed=self._shared_tpm_seed)]
        pending = (range(self.size) if indices is None else indices)
        return [
            Tpm.attestation_key_spec(f"tpm-{self._prefix}-{i:03d}")
            for i in pending if i not in self._by_index
        ]

    def _replica_for(self, name: str):
        """The replica a client is pinned to (stable name hash)."""
        if not self._replicas:
            return None
        import zlib
        return self._replicas[zlib.crc32(name.encode("ascii"))
                              % len(self._replicas)]

    def set_replica_refusals(self, refused):
        """Deny the given replica hostnames for the coming wave.

        Clients hashed onto a denied replica fall back to the primary
        (their ``replica_host`` is cleared); everyone else is (re)pointed
        at their assigned replica.  Called by the replay after each
        wave's freshness check.
        """
        self._replica_denied = set(refused)
        for client in self._by_index.values():
            replica = self._replica_for(client.name)
            if replica is None:
                continue
            client.manager.client.replica_host = (
                None if replica.hostname in self._replica_denied
                else replica.hostname)

    def client(self, i: int) -> FleetClient:
        """The ``i``-th client, booting it now if the fleet is lazy."""
        if not 0 <= i < self.size:
            raise IndexError(f"client index out of range: {i}")
        existing = self._by_index.get(i)
        if existing is not None:
            return existing
        if not self.lazy:
            raise KeyError(f"client {i} was retired")
        return self._boot(i)

    def subset(self, indices) -> list[FleetClient]:
        return [self.client(i) for i in indices]

    def retire(self, i: int, plan_session=None):
        """Tear down one client that will never pull again.

        Drops the node, manager, and network host; folds the manager's
        delta accounting into the retired total so fleet-wide stats stay
        complete; and — when ``plan_session`` is given — releases the
        client's channel bookkeeping there too.
        """
        client = self._by_index.pop(i, None)
        if client is None:
            return
        if self._retired_delta_stats is None:
            from repro.osim.pkgmgr import DeltaStats
            self._retired_delta_stats = DeltaStats()
        self._retired_delta_stats.merge(client.manager.delta_stats)
        client.node.teardown()
        self.scenario.nodes.pop(client.name, None)
        self.scenario.network.remove_host(client.name)
        if plan_session is not None:
            plan_session.retire_client(client.name)

    @property
    def booted_total(self) -> int:
        """How many boots ever happened (includes retired clients)."""
        return self._booted_total

    @property
    def active_count(self) -> int:
        return len(self._by_index)

    @staticmethod
    def _nic(client_downlink, i: int) -> float | None:
        if client_downlink is None:
            return None
        if isinstance(client_downlink, (int, float)):
            return float(client_downlink)
        return float(client_downlink[i % len(client_downlink)])

    def use_session(self, session):
        self._session = session
        for client in self._by_index.values():
            client.manager.client.use_session(session)

    def set_as_of(self, as_of: float | None):
        """Time-stamp every client's next requests on the plan timeline."""
        self._as_of = as_of
        for client in self._by_index.values():
            client.manager.client.as_of = as_of

    def delta_stats(self):
        """Fleet-wide delta-update accounting (sums every manager's,
        including clients retired from a lazy fleet)."""
        from repro.osim.pkgmgr import DeltaStats

        total = DeltaStats()
        if self._retired_delta_stats is not None:
            total.merge(self._retired_delta_stats)
        for client in self._by_index.values():
            total.merge(client.manager.delta_stats)
        return total


@dataclass
class FleetWaveOutcome:
    """What one pull wave did (before transfer timings are resolved)."""

    installs: int = 0
    #: client name -> authenticated index serial this wave served.
    served_serial: dict[str, int] = field(default_factory=dict)
    #: client name -> schedule key of the index fetch (plan sessions
    #: only) — the transfer whose completion is the client's staleness
    #: transition instant.
    index_keys: dict[str, object] = field(default_factory=dict)
    #: client name -> the wave's last schedule key (plan sessions only).
    last_keys: dict[str, object] = field(default_factory=dict)
    #: client name -> clock-measured elapsed (unscheduled clients only).
    client_elapsed: dict[str, float] = field(default_factory=dict)
    #: Clients whose index pull failed (no publication visible yet).
    failed_pulls: int = 0
    #: Install attempts that failed at the transfer layer (tolerant waves
    #: only — e.g. a blob the publication could no longer serve because
    #: eviction pressure removed it before capture).
    failed_installs: int = 0


def run_pull_wave(clients: list[FleetClient], rng: random.Random,
                  installs_per_client: int,
                  installable: list[str] | None = None,
                  measure_clock=None,
                  plan_session=None,
                  tolerate_failures: bool = False) -> FleetWaveOutcome:
    """Drive one pull wave: every client updates its index and installs.

    The wave planner behind both :func:`fleet_refresh` (one wave on a
    private session) and the trace replay (many waves composed onto one
    plan-wide schedule).  Install choices flow through the *explicit*
    ``rng`` — no module or ambient RNG state — so interleaving two
    replays in one process cannot couple their randomness.

    ``installable`` restricts choices to packages known servable (empty /
    ``None`` falls back to each client's own index).  ``measure_clock``
    (a :class:`SimClock`) records per-client elapsed for clock-serialized
    clients; ``plan_session`` records each client's last schedule key so
    the replay can resolve wave completion offsets after the full plan is
    solved.  ``tolerate_failures`` turns an unanswerable index pull into
    a counted failure instead of an exception (a replay client pulling
    before the first publication exists simply stays stale).
    """
    from repro.util.errors import NetworkError

    outcome = FleetWaveOutcome()
    for client in clients:
        start = measure_clock.now() if measure_clock is not None else None
        try:
            index = client.manager.update()
        except NetworkError:
            if not tolerate_failures:
                raise
            outcome.failed_pulls += 1
            if plan_session is not None:
                key = plan_session.last_key(client.name)
                if key is not None:
                    outcome.last_keys[client.name] = key
            continue
        outcome.served_serial[client.name] = index.serial
        if plan_session is not None:
            key = plan_session.last_key(client.name)
            if key is not None:
                outcome.index_keys[client.name] = key
        choices = list(installable or index.package_names())
        rng.shuffle(choices)
        done = 0
        for pkg_name in choices:
            if done >= installs_per_client:
                break
            try:
                client.manager.install(pkg_name)
            except PackageManagerError:
                # Closure includes a package TSR rejected — not installable
                # through the sanitized repository; pick another.
                continue
            except NetworkError:
                # A blob this publication can no longer serve (evicted
                # before capture): tolerant clients move on, strict
                # callers (fleet_refresh) keep the historical raise.
                if not tolerate_failures:
                    raise
                outcome.failed_installs += 1
                continue
            done += 1
            outcome.installs += 1
        if measure_clock is not None:
            outcome.client_elapsed[client.name] = \
                measure_clock.now() - start
        if plan_session is not None:
            key = plan_session.last_key(client.name)
            if key is not None:
                outcome.last_keys[client.name] = key
    return outcome


@dataclass
class FleetRefreshReport:
    """One fleet-refresh round: a repository refresh plus N client updates."""

    refresh: RefreshReport
    clients: int
    installs: int
    updated_packages: list[str]
    #: Simulated seconds from the start of the refresh until the last
    #: client finished installing.
    wall_elapsed: float
    #: Per-client simulated install durations (same order as the nodes).
    client_elapsed: list[float] = field(default_factory=list)
    #: Whether the fan-out ran on the shared transfer schedule.
    scheduled: bool = False
    #: Simulated seconds the whole client fan-out took (schedule makespan
    #: in scheduled mode, sum of per-client slices in serial mode).
    fanout_elapsed: float = 0.0

    @property
    def slowest_client(self) -> float:
        return max(self.client_elapsed, default=0.0)


def fleet_refresh(scenario: Scenario, clients: int = 8,
                  installs_per_client: int = 2,
                  update_fraction: float = 0.05,
                  pipelined: bool = True,
                  seed: int = 11,
                  scheduled: bool = True,
                  client_downlink=None,
                  rng: random.Random | None = None) -> FleetRefreshReport:
    """Publish an update batch, refresh TSR, and drive a client fleet.

    The flow the north star cares about: upstream releases land, the
    (pipelined) refresh engine re-sanitizes them, and ``clients`` nodes
    update their indexes and install from the refreshed repository.  The
    report separates refresh latency from fan-out latency so benches can
    show where pipelining moves the needle.  The fleet machinery itself
    — node construction (:class:`ClientFleet`) and the pull wave
    (:func:`run_pull_wave`) — is shared with the multi-round trace
    replay (:mod:`repro.workload.replay`), which composes many such
    waves onto one plan-wide schedule; this function runs exactly one.

    With ``scheduled`` (the default) every client's fetches run as one
    channel on a shared :class:`ScheduledFetchSession` whose capacity is
    the TSR host's uplink: tens of thousands of nodes resolve in a single
    incremental event-driven ``solve`` and their per-client timings
    reflect shared-link contention.  ``scheduled=False`` keeps the old
    behaviour — clients advance the clock one after another — for
    comparison benches.

    ``client_downlink`` models the clients' NIC downlinks: a single
    bandwidth (bytes/s) applied to every client, or a sequence cycled
    across the fleet (heterogeneous NICs).  Each client host carries its
    value as ``downlink_bandwidth`` and, in scheduled mode, its session
    channel is capped at it — the layered-capacity rate model
    ``min(TSR bandwidth, client NIC, fair uplink share)``.

    The fleet's own randomness (install choices) flows through one
    *explicit* ``random.Random`` — ``rng``, defaulting to
    ``random.Random(seed)`` — never through module-level RNG state, so
    concurrent scenarios in one process stay independently reproducible;
    ``generate_update_batch`` seeds its internal RNG from the same
    ``seed``.  Repeated calls with equal arguments on identically built
    scenarios are therefore reproducible.
    """
    from repro.workload.generator import generate_update_batch

    if clients < 1:
        raise ValueError("fleet needs at least one client")
    if (client_downlink is not None
            and not isinstance(client_downlink, (int, float))
            and not len(client_downlink)):
        raise ValueError("client_downlink sequence must be non-empty")
    rng = rng if rng is not None else random.Random(seed)
    workload = getattr(scenario, "workload", None)
    updated: list[str] = []
    if workload is not None:
        batch = generate_update_batch(workload, fraction=update_fraction,
                                      seed=seed)
        scenario.origin.publish_many([(package, None) for package in batch])
        for package in batch:
            scenario.population[package.name] = package
        updated = [package.name for package in batch]
        scenario.sync_mirrors()

    start = scenario.clock.now()
    report = scenario.refresh(pipelined=pipelined)

    installable = [
        name for name in report.changed_packages
        if scenario.tsr.cache.has_sanitized(scenario.repo_id, name)
    ]
    session = None
    if scheduled:
        uplink = scenario.network.host(scenario.tsr.hostname).bandwidth
        session = ScheduledFetchSession(scenario.network,
                                        shared_bandwidth=uplink)
    fanout_start = scenario.clock.now()
    fleet = ClientFleet(scenario, clients, name_prefix=f"fleet-{seed}",
                        session=session, client_downlink=client_downlink)
    wave = run_pull_wave(
        fleet.clients, rng, installs_per_client, installable=installable,
        measure_clock=None if scheduled else scenario.clock,
    )
    if scheduled:
        session.solve()
        client_elapsed = [session.channel_finish(client.name)
                          for client in fleet.clients]
        fanout_elapsed = session.makespan
        scenario.clock.advance(fanout_elapsed)
    else:
        client_elapsed = [wave.client_elapsed[client.name]
                          for client in fleet.clients]
        fanout_elapsed = scenario.clock.now() - fanout_start
    return FleetRefreshReport(
        refresh=report,
        clients=clients,
        installs=wave.installs,
        updated_packages=updated,
        wall_elapsed=scenario.clock.now() - start,
        client_elapsed=client_elapsed,
        scheduled=scheduled,
        fanout_elapsed=fanout_elapsed,
    )
