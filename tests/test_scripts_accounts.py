"""Unit tests for the /etc account-file format helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scripts.accounts import (
    GroupSpec,
    UserSpec,
    add_group,
    add_user,
    insecure_accounts,
    next_free_id,
    parse_adduser_args,
    parse_addgroup_args,
    parse_group,
    parse_passwd,
    parse_shadow,
    set_password,
)
from repro.util.errors import ScriptError

PASSWD = "root:x:0:0:root:/root:/bin/ash\n"
SHADOW = "root:!:0:0:99999:7:::\n"
GROUP = "root:x:0:\n"

_name = st.text(st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=12)


class TestParsers:
    def test_parse_passwd(self):
        entries = parse_passwd(PASSWD)
        assert entries["root"][6] == "/bin/ash"

    def test_parse_shadow(self):
        assert parse_shadow(SHADOW)["root"][1] == "!"

    def test_parse_group(self):
        assert parse_group("www:x:82:nginx,root\n")["www"][3] == "nginx,root"

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ScriptError):
            parse_passwd("broken:line\n")
        with pytest.raises(ScriptError):
            parse_shadow("a:b\n")

    def test_blank_lines_ignored(self):
        assert len(parse_group(GROUP + "\n\n")) == 1


class TestMutation:
    def test_add_group_assigns_free_gid(self):
        text = add_group(GROUP, GroupSpec(name="www"))
        assert int(parse_group(text)["www"][2]) >= 101

    def test_add_group_idempotent(self):
        once = add_group(GROUP, GroupSpec(name="www"))
        assert add_group(once, GroupSpec(name="www")) == once

    def test_add_user_creates_matching_group(self):
        passwd, shadow, group = add_user(PASSWD, SHADOW, GROUP,
                                         UserSpec(name="svc"))
        assert "svc" in parse_passwd(passwd)
        assert "svc" in parse_shadow(shadow)
        assert "svc" in parse_group(group)
        # uid matches the user's own group gid by construction here.
        assert parse_passwd(passwd)["svc"][3] == parse_group(group)["svc"][2]

    def test_add_user_with_explicit_ids(self):
        passwd, _, _ = add_user(PASSWD, SHADOW, GROUP,
                                UserSpec(name="svc", uid=501, gid=502))
        fields = parse_passwd(passwd)["svc"]
        assert fields[2] == "501"
        assert fields[3] == "502"

    def test_set_password_empty(self):
        shadow = set_password(SHADOW, "root", "")
        assert parse_shadow(shadow)["root"][1] == ""

    def test_set_password_unknown_user_rejected(self):
        with pytest.raises(ScriptError):
            set_password(SHADOW, "ghost", "")

    def test_next_free_id_skips_used(self):
        assert next_free_id({100, 101, 103}, 100) == 102

    @given(st.lists(_name, min_size=1, max_size=8, unique=True))
    @settings(max_examples=30)
    def test_user_creation_deterministic_for_fixed_order(self, names):
        def build():
            passwd, shadow, group = PASSWD, SHADOW, GROUP
            for name in names:
                passwd, shadow, group = add_user(passwd, shadow, group,
                                                 UserSpec(name=name))
            return passwd, shadow, group

        assert build() == build()

    @given(st.lists(_name, min_size=2, max_size=6, unique=True))
    @settings(max_examples=30)
    def test_all_users_present_after_any_prefix_replay(self, names):
        """Idempotence: re-adding an existing prefix never changes files."""
        passwd, shadow, group = PASSWD, SHADOW, GROUP
        for name in names:
            passwd, shadow, group = add_user(passwd, shadow, group,
                                             UserSpec(name=name))
        replayed = (passwd, shadow, group)
        for name in names[:3]:
            replayed = add_user(*replayed, UserSpec(name=name))
        assert replayed == (passwd, shadow, group)


class TestInsecureDetection:
    def test_empty_password_usable_shell_flagged(self):
        passwd, shadow, _ = add_user(PASSWD, SHADOW, GROUP,
                                     UserSpec(name="ftp", shell="/bin/ash"))
        shadow = set_password(shadow, "ftp", "")
        assert insecure_accounts(passwd, shadow) == ["ftp"]

    def test_locked_password_not_flagged(self):
        passwd, shadow, _ = add_user(PASSWD, SHADOW, GROUP,
                                     UserSpec(name="svc", shell="/bin/ash"))
        assert insecure_accounts(passwd, shadow) == []

    def test_nologin_shell_not_flagged(self):
        passwd, shadow, _ = add_user(PASSWD, SHADOW, GROUP,
                                     UserSpec(name="svc"))
        shadow = set_password(shadow, "svc", "")
        assert insecure_accounts(passwd, shadow) == []


class TestArgParsers:
    def test_adduser_full_flag_set(self):
        kwargs, primary = parse_adduser_args(
            ["-S", "-D", "-H", "-h", "/var/lib/pg", "-s", "/bin/sh",
             "-G", "postgres", "-u", "70", "postgres"]
        )
        assert kwargs == {"home": "/var/lib/pg", "shell": "/bin/sh",
                          "uid": 70, "name": "postgres"}
        assert primary == "postgres"

    def test_adduser_requires_exactly_one_name(self):
        with pytest.raises(ScriptError):
            parse_adduser_args(["-S"])
        with pytest.raises(ScriptError):
            parse_adduser_args(["a", "b"])

    def test_adduser_unknown_flag_rejected(self):
        with pytest.raises(ScriptError):
            parse_adduser_args(["--create-home", "x"])

    def test_addgroup_forms(self):
        assert parse_addgroup_args(["-S", "www"]) == (None, ["www"])
        assert parse_addgroup_args(["-g", "82", "www"]) == (82, ["www"])
        assert parse_addgroup_args(["nginx", "www"]) == (None, ["nginx", "www"])

    def test_addgroup_arity_checked(self):
        with pytest.raises(ScriptError):
            parse_addgroup_args(["-S"])
        with pytest.raises(ScriptError):
            parse_addgroup_args(["a", "b", "c"])
