"""The IMA measurement and appraisal engine."""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.hashes import sha256_bytes
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.tpm.device import IMA_PCR_INDEX, Tpm
from repro.util.errors import FileSystemError

if TYPE_CHECKING:  # osim imports ima at runtime; keep this edge hints-only
    from repro.osim.fs import FileNode, SimFileSystem

IMA_XATTR = "security.ima"

#: Leading byte of a signature-type security.ima value (EVM_IMA_XATTR_DIGSIG).
IMA_SIG_PREFIX = b"\x03"


class AppraisalMode(enum.Enum):
    """IMA-appraisal operating modes."""

    OFF = "off"          # measure only
    LOG = "log"          # record appraisal failures, allow the open
    ENFORCE = "enforce"  # deny opens that fail appraisal


@dataclass(frozen=True)
class ImaMeasurement:
    """One line of the IMA measurement list (ima-sig template)."""

    pcr_index: int
    path: str
    filedata_hash: bytes
    signature: bytes | None

    def template_digest(self) -> bytes:
        """The digest extended into the PCR for this entry."""
        sig = self.signature or b""
        return sha256_bytes(
            self.filedata_hash + self.path.encode() + b"\x00" + sig
        )

    def to_dict(self) -> dict:
        return {
            "pcr": self.pcr_index,
            "path": self.path,
            "hash": self.filedata_hash.hex(),
            "sig": self.signature.hex() if self.signature else None,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ImaMeasurement":
        return cls(
            pcr_index=raw["pcr"],
            path=raw["path"],
            filedata_hash=bytes.fromhex(raw["hash"]),
            signature=bytes.fromhex(raw["sig"]) if raw.get("sig") else None,
        )


def ima_signature_for(content: bytes, key: RsaPrivateKey) -> bytes:
    """Produce a security.ima signature value for file content."""
    return IMA_SIG_PREFIX + key.sign(sha256_bytes(content))


def ima_signature_with_cost(content: bytes,
                            key: RsaPrivateKey) -> tuple[bytes, float]:
    """Like :func:`ima_signature_for`, also reporting the host seconds the
    signature originally cost (memo hits report the recorded fresh cost,
    so enclave-time models charge repeated signings consistently)."""
    signature, cost = key.sign_with_cost(sha256_bytes(content))
    return IMA_SIG_PREFIX + signature, cost


def verify_ima_signature(content_hash: bytes, signature: bytes,
                         keyring: list[RsaPublicKey]) -> bool:
    """Check a security.ima value against the trusted keyring."""
    if not signature.startswith(IMA_SIG_PREFIX):
        return False
    raw = signature[len(IMA_SIG_PREFIX):]
    return any(key.verify(content_hash, raw) for key in keyring)


#: Default local-appraisal scope: code paths, like a real ima_appraise
#: policy (BPRM_CHECK / MMAP rules).  Config files under /etc are measured
#: and *remotely* verified via the monitoring system, but not locally
#: enforced — otherwise every legitimate account-file rewrite would wedge
#: the OS mid-script.
DEFAULT_APPRAISE_PREFIXES = ("/bin", "/sbin", "/usr", "/lib")
DEFAULT_EXEMPT_PREFIXES = ("/lib/apk",)

#: Mutable runtime state is excluded from *measurement* entirely, the
#: equivalent of ``dont_measure`` rules every production IMA policy carries
#: for databases, spools, and logs — their churn carries no integrity
#: signal and would drown verifiers in noise.
DEFAULT_MEASURE_EXEMPT_PREFIXES = ("/lib/apk", "/tmp", "/run", "/proc")


class ImaSubsystem:
    """Measurement + appraisal, attached to one OS instance."""

    def __init__(self, fs: SimFileSystem, tpm: Tpm,
                 appraisal: AppraisalMode = AppraisalMode.OFF,
                 keyring: list[RsaPublicKey] | None = None,
                 appraise_prefixes: tuple[str, ...] = DEFAULT_APPRAISE_PREFIXES,
                 exempt_prefixes: tuple[str, ...] = DEFAULT_EXEMPT_PREFIXES,
                 measure_exempt_prefixes: tuple[str, ...] =
                 DEFAULT_MEASURE_EXEMPT_PREFIXES):
        self._fs = fs
        self._tpm = tpm
        self.appraisal = appraisal
        self.keyring: list[RsaPublicKey] = list(keyring or [])
        self.appraise_prefixes = appraise_prefixes
        self.exempt_prefixes = exempt_prefixes
        self.measure_exempt_prefixes = measure_exempt_prefixes
        self.measurements: list[ImaMeasurement] = []
        self.appraisal_failures: list[str] = []
        self._measured: set[tuple[str, bytes]] = set()
        self._exempt_depth = 0
        fs.install_open_hook(self._on_open)

    @contextmanager
    def measurement_exempt(self):
        """Suppress measurement for the package-manager execution context.

        Production IMA policies carry ``dont_measure`` rules keyed on the
        package manager's SELinux label: the transient intermediate file
        contents it reads while editing /etc (adduser re-reads the account
        files between writes) carry no integrity signal — what matters is
        the final state services read afterwards, which *is* measured.
        """
        self._exempt_depth += 1
        try:
            yield
        finally:
            self._exempt_depth -= 1

    # -- keyring management ----------------------------------------------------

    def trust_key(self, key: RsaPublicKey):
        """Add a verification key (e.g. the TSR public signing key)."""
        self.keyring.append(key)

    # -- boot ---------------------------------------------------------------------

    def record_boot_aggregate(self):
        """First measurement list entry: aggregate over the boot PCRs."""
        aggregate = sha256_bytes(
            b"".join(self._tpm.pcr_bank.read(i) for i in range(8))
        )
        entry = ImaMeasurement(
            pcr_index=IMA_PCR_INDEX,
            path="boot_aggregate",
            filedata_hash=aggregate,
            signature=None,
        )
        self.measurements.append(entry)
        self._tpm.extend(IMA_PCR_INDEX, entry.template_digest(), "boot_aggregate")

    # -- the VFS hook ---------------------------------------------------------------

    def in_appraise_scope(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exempt_prefixes):
            return False
        return any(path.startswith(prefix) for prefix in self.appraise_prefixes)

    def _on_open(self, path: str, node: FileNode):
        if self._exempt_depth:
            return
        if any(path.startswith(prefix)
               for prefix in self.measure_exempt_prefixes):
            return
        content_hash = sha256_bytes(node.content)
        signature = node.xattrs.get(IMA_XATTR)
        if self.appraisal is not AppraisalMode.OFF and self.in_appraise_scope(path):
            self._appraise(path, content_hash, signature)
        key = (path, content_hash)
        if key in self._measured:
            return  # kernel IMA measures a given content once
        self._measured.add(key)
        entry = ImaMeasurement(
            pcr_index=IMA_PCR_INDEX,
            path=path,
            filedata_hash=content_hash,
            signature=signature,
        )
        self.measurements.append(entry)
        self._tpm.extend(IMA_PCR_INDEX, entry.template_digest(), f"ima:{path}")

    def _appraise(self, path: str, content_hash: bytes, signature: bytes | None):
        valid = signature is not None and verify_ima_signature(
            content_hash, signature, self.keyring
        )
        if valid:
            return
        self.appraisal_failures.append(path)
        if self.appraisal is AppraisalMode.ENFORCE:
            raise FileSystemError(
                f"IMA-appraisal denied open of {path}: "
                f"{'missing' if signature is None else 'invalid'} security.ima"
            )

    # -- verification-side helpers -------------------------------------------------------

    def measurement_list(self) -> list[ImaMeasurement]:
        return list(self.measurements)


def replay_measurement_list(entries: list[ImaMeasurement]) -> bytes:
    """Recompute the PCR-10 value a list of measurements should produce."""
    from repro.crypto.hashes import SHA256_DIGEST_SIZE

    pcr = bytes(SHA256_DIGEST_SIZE)
    for entry in entries:
        pcr = sha256_bytes(pcr + entry.template_digest())
    return pcr
