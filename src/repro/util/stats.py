"""Statistics helpers used by the evaluation harness.

The paper reports 20 % trimmed means, percentile boxplots (5/25/50/75/95),
and Spearman rank correlations.  These helpers implement the first two;
Spearman comes from scipy in the bench harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (same convention as numpy default).

    ``q`` is expressed in percent, e.g. ``percentile(xs, 95)``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    # The equal-neighbour guard also avoids subnormal underflow in the
    # interpolation products (e.g. 5e-324 * 0.75 rounding to 0.0).
    if low == high or ordered[low] == ordered[high]:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def trimmed_mean(values: Sequence[float], trim: float = 0.2) -> float:
    """Mean after dropping ``trim`` fraction from each tail (paper uses 20 %)."""
    if not values:
        raise ValueError("trimmed mean of empty sequence")
    if not 0 <= trim < 0.5:
        raise ValueError(f"trim fraction out of range: {trim}")
    ordered = sorted(values)
    drop = int(len(ordered) * trim)
    kept = ordered[drop:len(ordered) - drop] or ordered
    return sum(kept) / len(kept)


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary plus mean, as used in the paper's boxplots."""

    count: int
    mean: float
    p5: float
    p25: float
    p50: float
    p75: float
    p95: float

    def row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p5": self.p5,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p95": self.p95,
        }


def summarize_latencies(values: Iterable[float]) -> LatencySummary:
    """Build the five-number summary the paper's boxplots report."""
    data = list(values)
    if not data:
        raise ValueError("cannot summarize empty latency series")
    return LatencySummary(
        count=len(data),
        mean=sum(data) / len(data),
        p5=percentile(data, 5),
        p25=percentile(data, 25),
        p50=percentile(data, 50),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
    )


def human_bytes(size: float) -> str:
    """Render a byte count for table output, e.g. ``3.1 GB``."""
    magnitude = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if magnitude < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(magnitude)} {unit}"
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024
    raise AssertionError("unreachable")


def human_duration(seconds: float) -> str:
    """Render a duration for table output, e.g. ``13.4 min`` or ``36 ms``."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"
