"""Digest helpers: SHA-256 and HMAC-SHA-256.

``hashlib`` provides the compression function; everything above it
(IMA measurement formats, apk datahashes, sealing MACs) is built here.
"""

from __future__ import annotations

import hashlib

SHA256_DIGEST_SIZE = 32


def sha256_bytes(data: bytes) -> bytes:
    """Raw 32-byte SHA-256 digest."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest, the format IMA logs and APKINDEX use."""
    return sha256_bytes(data).hex()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256, used by SGX sealing to authenticate sealed blobs."""
    block_size = 64
    if len(key) > block_size:
        key = sha256_bytes(key)
    key = key.ljust(block_size, b"\x00")
    outer = bytes(b ^ 0x5C for b in key)
    inner = bytes(b ^ 0x36 for b in key)
    return sha256_bytes(outer + sha256_bytes(inner + data))
