"""Failure injection across the full stack: partitions, dead mirrors,
enclave restarts mid-operation, corrupted caches and downloads."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.mirrors.builder import MirrorSpec
from repro.mirrors.mirror import MirrorBehavior
from repro.simnet.latency import Continent
from repro.util.errors import NetworkError, QuorumError, RollbackError
from repro.workload.scenario import build_scenario


def _packages():
    return [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")]),
        ApkPackage(name="zlib", version="1.2.11-r3", depends=["musl"],
                   files=[PackageFile("/lib/libz.so.1", b"\x7fELF zlib")]),
    ]


FIVE_MIRRORS = tuple(
    MirrorSpec(f"mirror-{i}", continent)
    for i, continent in enumerate([
        Continent.EUROPE, Continent.EUROPE, Continent.EUROPE,
        Continent.NORTH_AMERICA, Continent.ASIA,
    ])
)


class TestMirrorFailures:
    def test_refresh_survives_minority_outage(self):
        scenario = build_scenario(packages=_packages(),
                                  mirror_specs=FIVE_MIRRORS,
                                  key_bits=1024, refresh=False,
                                  with_monitor=False)
        scenario.network.set_down("mirror-0")
        scenario.network.set_down("mirror-1")
        report = scenario.refresh()
        assert report.sanitized == 2

    def test_refresh_fails_cleanly_on_majority_outage(self):
        scenario = build_scenario(packages=_packages(),
                                  mirror_specs=FIVE_MIRRORS,
                                  key_bits=1024, refresh=False,
                                  with_monitor=False)
        for name in ("mirror-0", "mirror-1", "mirror-2"):
            scenario.network.set_down(name)
        with pytest.raises(QuorumError):
            scenario.refresh()

    def test_partition_to_fastest_mirrors_falls_back(self):
        """The adversary cuts TSR off from the EU mirrors; the quorum
        widens to the slower continents and still succeeds."""
        scenario = build_scenario(packages=_packages(),
                                  mirror_specs=FIVE_MIRRORS,
                                  key_bits=1024, refresh=False,
                                  with_monitor=False)
        scenario.network.partition("tsr.example", "mirror-0")
        scenario.network.partition("tsr.example", "mirror-1")
        report = scenario.refresh()
        assert report.sanitized == 2

    def test_download_survives_corrupt_fastest_mirror(self):
        specs = (
            MirrorSpec("corrupt-eu", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
            MirrorSpec("honest-eu", Continent.EUROPE),
            MirrorSpec("honest-na", Continent.NORTH_AMERICA),
        )
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024, with_monitor=False)
        assert scenario.refresh_report.sanitized == 2

    def test_all_package_sources_corrupt_fails_cleanly(self):
        specs = (
            MirrorSpec("corrupt-1", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
            MirrorSpec("corrupt-2", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
            MirrorSpec("corrupt-3", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
        )
        # The index is consistent (corruption only hits package payloads),
        # so the quorum succeeds but every download fails verification.
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024, refresh=False,
                                  with_monitor=False)
        with pytest.raises(NetworkError):
            scenario.refresh()


class TestParallelDownload:
    def test_parallel_refresh_equivalent_and_faster(self):
        a = build_scenario(packages=_packages(), key_bits=1024,
                           refresh=False, with_monitor=False)
        seq = a.tsr.refresh(a.repo_id, parallel_downloads=1)
        b = build_scenario(packages=_packages(), key_bits=1024,
                           refresh=False, with_monitor=False)
        par = b.tsr.refresh(b.repo_id, parallel_downloads=4)
        assert par.sanitized == seq.sanitized
        assert par.download_elapsed < seq.download_elapsed
        # Both tenants serve byte-identical indexes (same enclave build,
        # same derived key, same content).
        assert a.tsr.get_index_bytes(a.repo_id) == \
            b.tsr.get_index_bytes(b.repo_id)

    def test_parallel_survives_corrupt_mirror(self):
        specs = (
            MirrorSpec("corrupt-eu", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
            MirrorSpec("honest-1", Continent.EUROPE),
            MirrorSpec("honest-2", Continent.EUROPE),
        )
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024, refresh=False,
                                  with_monitor=False)
        report = scenario.tsr.refresh(scenario.repo_id, parallel_downloads=4)
        assert report.sanitized == 2

    def test_width_validated(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  refresh=False, with_monitor=False)
        with pytest.raises(ValueError):
            scenario.tsr.refresh(scenario.repo_id, parallel_downloads=0)


class TestTsrLifecycle:
    def test_restart_between_refreshes(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  with_monitor=False)
        scenario.tsr.restart()
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r3",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF r3")],
        ))
        scenario.sync_mirrors()
        report = scenario.tsr.refresh(scenario.repo_id)
        assert report.changed_packages == ["musl"]
        # Serving still works after restart + incremental refresh.
        blob = scenario.tsr.serve_package(scenario.repo_id, "musl")
        assert ApkPackage.parse(blob).verify([scenario.tsr_public_key])

    def test_restart_key_stability(self):
        """Clients keep a long-lived public key: the enclave re-derives
        the same signing key after restart (sealing-key-derived seeds)."""
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  with_monitor=False)
        before = scenario.tsr.public_key_pem(scenario.repo_id)
        scenario.tsr.restart()
        assert scenario.tsr.public_key_pem(scenario.repo_id) == before

    def test_missing_sealed_state_detected(self):
        from repro.core.service import SEALED_STATE_PATH
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  with_monitor=False)
        scenario.tsr.cache.disk.remove(SEALED_STATE_PATH)
        with pytest.raises(RollbackError):
            scenario.tsr.restart()

    def test_node_install_fails_cleanly_when_tsr_down(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  with_monitor=False)
        node, pm = scenario.new_node()
        pm.update()
        scenario.network.set_down("tsr.example")
        with pytest.raises(NetworkError):
            pm.install("musl")
        # Node state is unchanged: nothing half-installed.
        assert node.pkgdb.all() == []

    def test_cache_invalidation_forces_unavailability(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  with_monitor=False)
        scenario.tsr.cache.invalidate(scenario.repo_id, "musl")
        with pytest.raises(NetworkError):
            scenario.tsr.serve_package(scenario.repo_id, "musl")
        # zlib is untouched.
        assert scenario.tsr.serve_package(scenario.repo_id, "zlib")
