"""Tests for the OS: measured boot, versions, the package database."""

import pytest

from repro.ima.subsystem import AppraisalMode, replay_measurement_list
from repro.osim.fs import SimFileSystem
from repro.osim.os import BASELINE_FILES, IntegrityEnforcedOS
from repro.osim.pkgdb import InstalledPackage, PackageDatabase
from repro.osim.version import Version, is_newer
from repro.tpm.device import IMA_PCR_INDEX, verify_quote
from repro.util.errors import PackageManagerError, ReproError


class TestVersion:
    @pytest.mark.parametrize("older,newer", [
        ("1.0.0-r0", "1.0.0-r1"),
        ("1.0.0-r5", "1.0.1-r0"),
        ("1.2-r0", "1.2.1-r0"),
        ("1.9-r0", "1.10-r0"),
        ("2.0-r0", "2.0a-r0"),
        ("1.1.1f-r0", "1.1.1g-r0"),
    ])
    def test_ordering(self, older, newer):
        assert Version(older) < Version(newer)
        assert is_newer(newer, older)
        assert not is_newer(older, newer)

    def test_equality(self):
        assert Version("1.2.3-r1") == Version("1.2.3-r1")
        assert not is_newer("1.2.3-r1", "1.2.3-r1")

    def test_unparseable_rejected(self):
        with pytest.raises(PackageManagerError):
            Version("not-a-version")

    def test_hashable(self):
        assert len({Version("1.0-r0"), Version("1.0-r0")}) == 1


class TestBoot:
    def test_boot_populates_baseline(self):
        node = IntegrityEnforcedOS("node-a")
        node.boot()
        for path in BASELINE_FILES:
            assert node.fs.isfile(path)
        assert node.booted

    def test_boot_measures_chain(self):
        node = IntegrityEnforcedOS("node-b")
        node.boot()
        assert node.tpm.pcr_bank.read(0) != bytes(32)
        assert node.tpm.pcr_bank.read(4) != bytes(32)
        assert node.tpm.pcr_bank.read(IMA_PCR_INDEX) != bytes(32)

    def test_boot_aggregate_first_entry(self):
        node = IntegrityEnforcedOS("node-c")
        node.boot()
        assert node.ima.measurements[0].path == "boot_aggregate"

    def test_double_boot_rejected(self):
        node = IntegrityEnforcedOS("node-d")
        node.boot()
        with pytest.raises(ReproError):
            node.boot()

    def test_identical_nodes_identical_pcrs(self):
        a = IntegrityEnforcedOS("twin-1")
        b = IntegrityEnforcedOS("twin-2")
        a.boot()
        b.boot()
        assert a.tpm.pcr_bank.read(IMA_PCR_INDEX) == b.tpm.pcr_bank.read(IMA_PCR_INDEX)

    def test_policy_config_overrides_baseline(self):
        node = IntegrityEnforcedOS(
            "node-e", init_config_files={"/etc/passwd": "root:x:0:0::/root:/bin/ash\n"}
        )
        node.boot()
        assert node.fs.read_file("/etc/passwd") == b"root:x:0:0::/root:/bin/ash\n"

    def test_vendor_key_signs_baseline(self, rsa_key):
        node = IntegrityEnforcedOS("node-f", appraisal=AppraisalMode.ENFORCE,
                                   vendor_key=rsa_key)
        node.boot()  # would raise if baseline files failed appraisal
        assert node.ima.appraisal_failures == []


class TestAttestation:
    def test_evidence_verifies(self):
        node = IntegrityEnforcedOS("node-att")
        node.boot()
        evidence = node.attest(nonce=b"verifier-nonce")
        pcrs = verify_quote(evidence.quote, evidence.attestation_key,
                            b"verifier-nonce")
        assert pcrs[IMA_PCR_INDEX] == replay_measurement_list(evidence.ima_log)

    def test_new_measurement_changes_quote(self):
        node = IntegrityEnforcedOS("node-att2")
        node.boot()
        before = node.attest(b"n").quote.pcr_values[IMA_PCR_INDEX]
        node.fs.write_file("/bin/new-tool", b"new binary")
        node.load_file("/bin/new-tool")
        after = node.attest(b"n").quote.pcr_values[IMA_PCR_INDEX]
        assert before != after


class TestPackageDatabase:
    @pytest.fixture()
    def db(self):
        return PackageDatabase(SimFileSystem())

    def _pkg(self, name="musl", version="1.1.24-r2"):
        return InstalledPackage(name=name, version=version,
                                content_hash="ab" * 32,
                                files=("/lib/libc.so", "/lib/ld.so"))

    def test_add_get_roundtrip(self, db):
        db.add(self._pkg())
        record = db.get("musl")
        assert record is not None
        assert record.version == "1.1.24-r2"
        assert record.files == ("/lib/libc.so", "/lib/ld.so")

    def test_persisted_in_filesystem(self):
        fs = SimFileSystem()
        db = PackageDatabase(fs)
        db.add(self._pkg())
        # A second database instance over the same fs sees the record.
        assert PackageDatabase(fs).get("musl") is not None
        assert b"musl" in fs.read_file("/lib/apk/db/installed")

    def test_remove(self, db):
        db.add(self._pkg())
        db.remove("musl")
        assert db.get("musl") is None

    def test_remove_missing_rejected(self, db):
        with pytest.raises(PackageManagerError):
            db.remove("ghost")

    def test_all_sorted(self, db):
        db.add(self._pkg("zlib"))
        db.add(self._pkg("musl"))
        assert [p.name for p in db.all()] == ["musl", "zlib"]

    def test_mark_outdated_tampers_version(self, db):
        db.add(self._pkg())
        db.mark_outdated("musl")
        record = db.get("musl")
        assert record.version == "0.0.0-r0"
        assert record.content_hash == "0" * 64
        assert record.files  # files list preserved

    def test_mark_outdated_missing_rejected(self, db):
        with pytest.raises(PackageManagerError):
            db.mark_outdated("ghost")
