"""Operation classifier reproducing the paper's Table 2 taxonomy.

Every command in a script maps to one operation type; the set of types in a
package's scripts decides whether the package is *safe* as-is, *sanitizable*
by TSR, or *unsupported*:

=====================  =====  ==================
operation              safe   safe after TSR
=====================  =====  ==================
Filesystem changes     yes    yes
Empty scripts          yes    yes
Text processing        yes    yes
Configuration change   no     no  (rejected)
Empty file creation    no     yes (pre-signed)
User/Group creation    no     yes (deterministic rewrite)
Shell activation       no     no  (rejected by design)
=====================  =====  ==================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import Command, Script
from repro.util.errors import ScriptError


class OperationType(enum.Enum):
    """The seven operation categories of the paper's Table 2."""

    FILESYSTEM_CHANGE = "filesystem_change"
    EMPTY = "empty"
    TEXT_PROCESSING = "text_processing"
    CONFIG_CHANGE = "config_change"
    EMPTY_FILE_CREATION = "empty_file_creation"
    USER_GROUP_CREATION = "user_group_creation"
    SHELL_ACTIVATION = "shell_activation"

    @property
    def safe(self) -> bool:
        """Safe to run in an integrity-enforced OS without sanitization."""
        return self in _SAFE_OPERATIONS

    @property
    def sanitizable(self) -> bool:
        """Unsafe, but TSR sanitization makes it safe (Table 2 last column)."""
        return self in _SANITIZABLE_OPERATIONS

    @property
    def label(self) -> str:
        return _LABELS[self]


_SAFE_OPERATIONS = frozenset({
    OperationType.FILESYSTEM_CHANGE,
    OperationType.EMPTY,
    OperationType.TEXT_PROCESSING,
})

_SANITIZABLE_OPERATIONS = frozenset({
    OperationType.EMPTY_FILE_CREATION,
    OperationType.USER_GROUP_CREATION,
})

_LABELS = {
    OperationType.FILESYSTEM_CHANGE: "Filesystem changes",
    OperationType.EMPTY: "Empty scripts",
    OperationType.TEXT_PROCESSING: "Text processing",
    OperationType.CONFIG_CHANGE: "Configuration change",
    OperationType.EMPTY_FILE_CREATION: "Empty file creation",
    OperationType.USER_GROUP_CREATION: "User/Group creation",
    OperationType.SHELL_ACTIVATION: "Shell activation",
}

_EMPTY_COMMANDS = frozenset({"true", ":", "false", "exit", "echo", "test", "["})
_FILESYSTEM_COMMANDS = frozenset({
    "mkdir", "rmdir", "rm", "mv", "cp", "ln", "chmod", "install", "setfattr",
})
_TEXT_COMMANDS = frozenset({"cat", "grep", "sed", "cut", "head", "wc"})
_ACCOUNT_COMMANDS = frozenset({"adduser", "addgroup", "passwd"})
_SHELL_COMMANDS = frozenset({"add-shell", "remove-shell"})

#: Precedence when reporting a package's primary category: the least
#: tractable operation wins (an unsupported op dominates a sanitizable one).
PRIMARY_PRECEDENCE = (
    OperationType.SHELL_ACTIVATION,
    OperationType.CONFIG_CHANGE,
    OperationType.USER_GROUP_CREATION,
    OperationType.EMPTY_FILE_CREATION,
    OperationType.FILESYSTEM_CHANGE,
    OperationType.TEXT_PROCESSING,
    OperationType.EMPTY,
)


def classify_command(command: Command) -> OperationType:
    """Map one command (with its redirect) to an operation type."""
    if command.redirect is not None:
        # Script output redirected into a file rewrites that file's contents
        # in a way signatures cannot predict -> configuration change.
        return OperationType.CONFIG_CHANGE
    if command.name in _SHELL_COMMANDS:
        return OperationType.SHELL_ACTIVATION
    if command.name in _ACCOUNT_COMMANDS:
        return OperationType.USER_GROUP_CREATION
    if command.name == "touch":
        return OperationType.EMPTY_FILE_CREATION
    if command.name == "sed" and "-i" in command.args:
        return OperationType.CONFIG_CHANGE
    if command.name in _TEXT_COMMANDS:
        return OperationType.TEXT_PROCESSING
    if command.name in _FILESYSTEM_COMMANDS:
        return OperationType.FILESYSTEM_CHANGE
    if command.name in _EMPTY_COMMANDS:
        return OperationType.EMPTY
    raise ScriptError(f"cannot classify unsupported command {command.name!r}")


@dataclass
class ScriptProfile:
    """Classification of a single script."""

    operations: set[OperationType] = field(default_factory=set)
    commands: int = 0

    @property
    def is_empty(self) -> bool:
        """Only conditional checks / display output (Table 2 'Empty scripts')."""
        return self.operations <= {OperationType.EMPTY}

    @property
    def safe(self) -> bool:
        return all(op.safe for op in self.operations)

    @property
    def sanitizable(self) -> bool:
        """True when TSR can rewrite this script into a safe one."""
        return all(op.safe or op.sanitizable for op in self.operations)

    @property
    def unsafe_operations(self) -> set[OperationType]:
        return {op for op in self.operations if not op.safe}

    def primary_category(self) -> OperationType:
        if not self.operations:
            return OperationType.EMPTY
        for op in PRIMARY_PRECEDENCE:
            if op in self.operations:
                return op
        raise AssertionError("unreachable: unknown operation type")

    def merge(self, other: "ScriptProfile") -> "ScriptProfile":
        return ScriptProfile(
            operations=self.operations | other.operations,
            commands=self.commands + other.commands,
        )


def classify_script(source: str | Script) -> ScriptProfile:
    """Classify one script's operations."""
    script = parse_script(source) if isinstance(source, str) else source
    profile = ScriptProfile()
    for command in script.iter_commands():
        profile.operations.add(classify_command(command))
        profile.commands += 1
    return profile


def classify_package_scripts(scripts: dict[str, str]) -> ScriptProfile:
    """Classify all of a package's hook scripts as one profile."""
    profile = ScriptProfile()
    for source in scripts.values():
        profile = profile.merge(classify_script(source))
    return profile
