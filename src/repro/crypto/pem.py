"""PEM-style armoring for keys and certificates.

Policies embed key material as PEM blobs (paper Listing 1); this module
provides the ``-----BEGIN <LABEL>-----`` framing over base64 bodies.
"""

from __future__ import annotations

import base64

from repro.util.errors import SignatureError

_LINE_LENGTH = 64


def pem_encode(label: str, body: bytes) -> str:
    """Wrap ``body`` in PEM armor with the given label."""
    if not label or label != label.upper():
        raise ValueError(f"PEM label must be non-empty upper-case, got {label!r}")
    encoded = base64.b64encode(body).decode("ascii")
    lines = [encoded[i:i + _LINE_LENGTH] for i in range(0, len(encoded), _LINE_LENGTH)]
    return "\n".join(
        [f"-----BEGIN {label}-----", *lines, f"-----END {label}-----"]
    )


def pem_decode(pem: str) -> tuple[str, bytes]:
    """Parse PEM armor; returns ``(label, body)``.

    Tolerates surrounding whitespace (policies store PEMs as block scalars).
    """
    lines = [line.strip() for line in pem.strip().splitlines() if line.strip()]
    if len(lines) < 2:
        raise SignatureError("PEM too short")
    head, tail = lines[0], lines[-1]
    if not (head.startswith("-----BEGIN ") and head.endswith("-----")):
        raise SignatureError(f"malformed PEM header: {head!r}")
    if not (tail.startswith("-----END ") and tail.endswith("-----")):
        raise SignatureError(f"malformed PEM footer: {tail!r}")
    label = head[len("-----BEGIN "):-len("-----")]
    end_label = tail[len("-----END "):-len("-----")]
    if label != end_label:
        raise SignatureError(f"PEM label mismatch: {label!r} vs {end_label!r}")
    try:
        body = base64.b64decode("".join(lines[1:-1]), validate=True)
    except Exception as exc:
        raise SignatureError(f"invalid PEM base64 body: {exc}") from exc
    return label, body
