"""Tests for the incremental transfer-schedule solver.

Three layers:

* *differential*: the incremental solver must agree with the dense PR 2
  reference (``solve_reference``) to float tolerance on ~100 randomized
  workloads covering mixed setups, zero-size items, downed-channel
  stalls, capacity ties, large start offsets, and layered channel caps
  both on and off;
* *dirty-set unit tests*: hand-computed schedules where a stream's class
  (capped vs level-bound) changes mid-flight, so the water-level
  rebalance is exercised directly;
* *event-heap ordering*: exact completion ties, zero-size chains, and
  setup-only channels.
"""

import random

import pytest

from repro.simnet.latency import Continent, LatencyModel
from repro.simnet.network import Host, Network, Request, ScheduledFetchSession
from repro.simnet.schedule import ParallelTransferSchedule, max_min_rates
from repro.util.errors import NetworkError


def _random_schedule(seed: int) -> tuple[ParallelTransferSchedule, float]:
    """One randomized workload: (schedule, start_time)."""
    rng = random.Random(seed)
    downlink = rng.choice([None, 40.0, 75.0, 120.0, 300.0])
    schedule = ParallelTransferSchedule(downlink_bandwidth=downlink)
    layered = rng.random() < 0.5
    for channel in range(rng.randint(1, 9)):
        if layered and rng.random() < 0.6:
            schedule.limit_channel(channel, rng.choice([15.0, 40.0, 90.0]))
        for item in range(rng.randint(0, 5)):
            setup = rng.choice([0.0, 0.01, round(rng.uniform(0, 3), 3)])
            size = rng.choice([0, 0, rng.randint(1, 5000)])
            bandwidth = rng.choice([25.0, 50.0, 50.0, 100.0])  # frequent ties
            schedule.enqueue(channel, (channel, item), setup, size, bandwidth)
        if rng.random() < 0.2:
            # Downed-peer shape: a zero-byte stall holding the channel.
            schedule.enqueue(channel, ("stall", channel), 5.0, 0, 1.0)
    start_time = rng.choice([0.0, 7.25, 1000.0, 123456.789])
    return schedule, start_time


class TestDifferential:
    @pytest.mark.parametrize("seed", range(100))
    def test_matches_reference_on_random_workloads(self, seed):
        schedule, start_time = _random_schedule(seed)
        incremental = schedule.solve(start_time=start_time)
        reference = schedule.solve_reference(start_time=start_time)
        assert set(incremental) == set(reference)
        for key in reference:
            assert incremental[key].start == pytest.approx(
                reference[key].start, abs=1e-6)
            assert incremental[key].finish == pytest.approx(
                reference[key].finish, abs=1e-6)

    def test_solve_is_pure_and_resolvable(self):
        # The pipeline enqueues retries into a live schedule and re-solves:
        # earlier items must keep their timings, and repeat solves of an
        # unchanged schedule must be identical.
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        schedule.enqueue("m1", "a", 0.0, 400, 100.0)
        first = schedule.solve()
        schedule.enqueue("m2", "b", 0.0, 400, 100.0)
        second = schedule.solve()
        assert first["a"].finish == pytest.approx(4.0)
        assert second["a"].finish == pytest.approx(8.0)  # now shares the link
        assert schedule.solve()["a"].finish == second["a"].finish


class TestDirtySetRebalance:
    def test_stream_promoted_when_contender_leaves(self):
        # capacity 100, two cap-60 streams: both level-bound at 50.  When A
        # (600 B) finishes at t=12, B is promoted to its own cap (60) for
        # its remaining 600 B: 12 + 10 = 22.
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        schedule.enqueue("a", "A", 0.0, 600, 60.0)
        schedule.enqueue("b", "B", 0.0, 1200, 60.0)
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(12.0)
        assert timings["B"].finish == pytest.approx(22.0)

    def test_stream_demoted_when_contender_arrives(self):
        # B runs alone at its cap (60) for 5 s (300 B done), then A's setup
        # ends and the 100 B/s link splits 50/50: A (200 B) finishes at
        # 5 + 4 = 9, then B's last 500 B run at 60: 9 + 300/50... B has
        # 900 - 300 - 200 = 400 B left at t=9, at cap 60 -> 15.667.
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        schedule.enqueue("b", "B", 0.0, 900, 60.0)
        schedule.enqueue("a", "A", 5.0, 200, 60.0)
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(9.0)
        assert timings["B"].finish == pytest.approx(9.0 + 400 / 60.0)

    def test_layered_channel_cap_binds_below_fair_share(self):
        # Uplink 100 shared by NIC-30 and NIC-80 clients (peer bandwidth
        # 100): progressive filling gives 30 and 70.  A (30 B) ends at 1 s;
        # B then runs at its NIC (80): 1 + (700-70)/80 = 8.875.
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        schedule.limit_channel("a", 30.0)
        schedule.limit_channel("b", 80.0)
        schedule.enqueue("a", "A", 0.0, 30, 100.0)
        schedule.enqueue("b", "B", 0.0, 700, 100.0)
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(1.0)
        assert timings["B"].finish == pytest.approx(8.875)

    def test_channel_cap_above_bandwidth_is_inert(self):
        schedule = ParallelTransferSchedule()
        schedule.limit_channel("a", 1000.0)
        schedule.enqueue("a", "A", 0.0, 100, 50.0)
        assert schedule.solve()["A"].finish == pytest.approx(2.0)

    def test_channel_cap_applies_without_shared_link(self):
        schedule = ParallelTransferSchedule()  # no shared downlink at all
        schedule.limit_channel("a", 10.0)
        schedule.enqueue("a", "A", 0.0, 100, 50.0)
        assert schedule.solve()["A"].finish == pytest.approx(10.0)

    def test_limit_channel_validates(self):
        schedule = ParallelTransferSchedule()
        with pytest.raises(ValueError):
            schedule.limit_channel("a", 0.0)
        with pytest.raises(ValueError):
            ParallelTransferSchedule(channel_capacities={"a": -1.0})

    def test_homogeneous_fleet_crosses_cap_boundary(self):
        # 8 cap-10 streams on a 50-capacity link: level-bound at 6.25 each
        # until enough finish that the survivors' caps bind.  Differential
        # equality pins the exact trajectory.
        schedule = ParallelTransferSchedule(downlink_bandwidth=50.0)
        for i in range(8):
            schedule.enqueue(i, i, 0.0, 100 * (i + 1), 10.0)
        incremental = schedule.solve()
        reference = schedule.solve_reference()
        for key in reference:
            assert incremental[key].finish == pytest.approx(
                reference[key].finish, abs=1e-9)


class TestEventHeapOrdering:
    def test_exactly_tied_completions(self):
        schedule = ParallelTransferSchedule()
        schedule.enqueue("a", "A", 0.0, 100, 10.0)   # finishes at 10
        schedule.enqueue("b", "B", 0.0, 200, 20.0)   # finishes at 10
        schedule.enqueue("c", "C", 10.0, 0, 5.0)     # setup ends at 10
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(10.0)
        assert timings["B"].finish == pytest.approx(10.0)
        assert timings["C"].finish == pytest.approx(10.0)

    def test_zero_size_chain_collapses_to_setups(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=50.0)
        schedule.enqueue("a", "A", 1.0, 0, 50.0)
        schedule.enqueue("a", "B", 0.0, 0, 50.0)
        schedule.enqueue("a", "C", 2.0, 100, 50.0)
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(1.0)
        assert timings["B"].start == pytest.approx(1.0)
        assert timings["B"].finish == pytest.approx(1.0)
        assert timings["C"].start == pytest.approx(1.0)
        assert timings["C"].finish == pytest.approx(5.0)

    def test_setup_only_channels_and_empty_queue(self):
        schedule = ParallelTransferSchedule()
        schedule.enqueue("a", "A", 3.0, 0, 1.0)
        schedule._queues.setdefault("empty", [])
        timings = schedule.solve(start_time=2.0)
        assert timings["A"].start == pytest.approx(2.0)
        assert timings["A"].finish == pytest.approx(5.0)

    def test_unorderable_channel_objects(self):
        # Channels and keys need not be mutually comparable: heap
        # tie-breaks must come from enqueue order, never the objects.
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        chan_a, chan_b = object(), object()
        schedule.enqueue(chan_a, "A", 0.0, 100, 10.0)
        schedule.enqueue(chan_b, "B", 0.0, 100, 10.0)
        timings = schedule.solve()
        assert timings["A"].finish == pytest.approx(20.0)
        assert timings["B"].finish == pytest.approx(20.0)


class TestMaxMinTieBreak:
    def test_equal_caps_keep_enqueue_order(self):
        # Regression: ties used to sort by str(key) — for objects with the
        # default repr that is the memory address, so the allocation order
        # varied run to run.  Ties now preserve insertion (enqueue) order.
        first, second = object(), object()
        caps = {}
        caps[second] = 5.0
        caps[first] = 5.0
        rates = max_min_rates(caps, 4.0)
        assert list(rates) == [second, first]
        assert rates[second] == pytest.approx(2.0)
        assert rates[first] == pytest.approx(2.0)

    def test_unorderable_keys_with_partial_fill(self):
        keys = [object() for _ in range(3)]
        caps = {keys[0]: 1.0, keys[1]: 50.0, keys[2]: 50.0}
        rates = max_min_rates(caps, 11.0)
        assert rates[keys[0]] == pytest.approx(1.0)
        assert rates[keys[1]] == pytest.approx(5.0)
        assert rates[keys[2]] == pytest.approx(5.0)


def _fleet_network() -> Network:
    net = Network(latency=LatencyModel(jitter=0))
    net.timeout = 1000.0
    handler = lambda op, payload: (b"x" * 1000, 1000)
    net.add_host(Host("tsr.eu", Continent.EUROPE, handler=handler,
                      processing_time=0.0, bandwidth=100.0))
    return net


class TestSessionLayeredNics:
    def test_client_nic_caps_its_channel(self):
        net = _fleet_network()
        net.add_host(Host("slow.eu", Continent.EUROPE,
                          downlink_bandwidth=20.0))
        net.add_host(Host("fast.eu", Continent.EUROPE))
        session = ScheduledFetchSession(net, shared_bandwidth=100.0)
        session.fetch("slow.eu", Request("tsr.eu", "get", size_bytes=0))
        session.fetch("fast.eu", Request("tsr.eu", "get", size_bytes=0))
        session.solve()
        rtt = 0.0264
        # slow's NIC pins it at 20 B/s for all 1000 B; fast gets the
        # residual 80 B/s until done (1000/80), far before slow.
        assert session.channel_finish("slow.eu") == pytest.approx(rtt + 50.0)
        assert session.channel_finish("fast.eu") == pytest.approx(rtt + 12.5)

    def test_no_nic_keeps_fair_split(self):
        net = _fleet_network()
        net.add_host(Host("c1.eu", Continent.EUROPE))
        net.add_host(Host("c2.eu", Continent.EUROPE))
        session = ScheduledFetchSession(net, shared_bandwidth=100.0)
        session.fetch("c1.eu", Request("tsr.eu", "get", size_bytes=0))
        session.fetch("c2.eu", Request("tsr.eu", "get", size_bytes=0))
        session.solve()
        rtt = 0.0264
        assert session.channel_finish("c1.eu") == pytest.approx(rtt + 20.0)
        assert session.channel_finish("c2.eu") == pytest.approx(rtt + 20.0)


class TestSessionStartTime:
    def test_start_time_recorded_at_construction(self):
        net = _fleet_network()
        net.add_host(Host("c1.eu", Continent.EUROPE))
        session = ScheduledFetchSession(net, start_time=100.0)
        session.fetch("c1.eu", Request("tsr.eu", "get", size_bytes=0))
        # makespan/channel_finish must not silently solve at 0.0.
        assert session.start_time == 100.0
        assert session.makespan == pytest.approx(100.0 + 0.0264 + 10.0)
        assert session.channel_finish("c1.eu") == pytest.approx(
            100.0 + 0.0264 + 10.0)
        assert session.channel_finish("idle") == pytest.approx(100.0)

    def test_resolve_at_other_offset_rejected(self):
        net = _fleet_network()
        net.add_host(Host("c1.eu", Continent.EUROPE))
        session = ScheduledFetchSession(net, start_time=5.0)
        session.fetch("c1.eu", Request("tsr.eu", "get", size_bytes=0))
        session.solve()
        session.solve(start_time=5.0)  # same offset: cached result is fine
        with pytest.raises(NetworkError):
            session.solve(start_time=0.0)
