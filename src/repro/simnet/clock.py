"""Simulated monotonic clock.

All latency experiments run against this clock so results are deterministic
and independent of the machine executing the reproduction.
"""

from __future__ import annotations


class SimClock:
    """A monotonic simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before zero")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock backwards ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute timestamp (no-op if in the past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"
