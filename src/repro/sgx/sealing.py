"""SGX sealing: authenticated encryption bound to CPU + enclave.

``seal``/``unseal`` implement encrypt-then-MAC over an HMAC-SHA-256
keystream (a from-scratch stream cipher is sufficient here — the security
property exercised by the reproduction is *binding*: only the same enclave
measurement on the same CPU derives the key that unseals the blob, and any
tampering breaks the MAC).
"""

from __future__ import annotations

from repro.crypto.hashes import hmac_sha256, sha256_bytes
from repro.util.errors import SealingError

_MAC_SIZE = 32
_NONCE_SIZE = 16


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hmac_sha256(key, nonce + counter.to_bytes(8, "big"))
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    # One wide integer XOR instead of a per-byte Python loop.
    return (int.from_bytes(data, "little")
            ^ int.from_bytes(keystream, "little")).to_bytes(len(data), "little")


def seal(sealing_key: bytes, plaintext: bytes, context: bytes = b"") -> bytes:
    """Seal ``plaintext``; ``context`` is authenticated but not stored."""
    if len(sealing_key) != 32:
        raise SealingError("sealing key must be 32 bytes")
    nonce = sha256_bytes(b"nonce:" + sealing_key + plaintext)[:_NONCE_SIZE]
    enc_key = hmac_sha256(sealing_key, b"enc")
    mac_key = hmac_sha256(sealing_key, b"mac")
    ciphertext = _xor_bytes(plaintext, _keystream(enc_key, nonce, len(plaintext)))
    mac = hmac_sha256(mac_key, nonce + ciphertext + context)
    return nonce + ciphertext + mac


def unseal(sealing_key: bytes, blob: bytes, context: bytes = b"") -> bytes:
    """Unseal; raises :class:`SealingError` on wrong key or tampering."""
    if len(sealing_key) != 32:
        raise SealingError("sealing key must be 32 bytes")
    if len(blob) < _NONCE_SIZE + _MAC_SIZE:
        raise SealingError("sealed blob too short")
    nonce = blob[:_NONCE_SIZE]
    ciphertext = blob[_NONCE_SIZE:-_MAC_SIZE]
    mac = blob[-_MAC_SIZE:]
    mac_key = hmac_sha256(sealing_key, b"mac")
    expected = hmac_sha256(mac_key, nonce + ciphertext + context)
    if mac != expected:
        raise SealingError(
            "unsealing failed: wrong CPU/enclave or tampered blob"
        )
    enc_key = hmac_sha256(sealing_key, b"enc")
    return _xor_bytes(ciphertext, _keystream(enc_key, nonce, len(ciphertext)))
