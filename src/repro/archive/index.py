"""The repository metadata index (APKINDEX equivalent).

The index lists every package with its size and content hash; the whole
index is digitally signed by the repository owner.  Pinning sizes and hashes
in signed metadata is what defeats the endless-data and extraneous-
dependencies attacks (paper section 5.4), and the signed ``serial`` is what
the quorum protocol and the rollback defence compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.crypto.hashes import sha256_hex
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.util.errors import PackagingError, SignatureError


@dataclass(frozen=True)
class IndexEntry:
    """One package line in the metadata index."""

    name: str
    version: str
    size: int
    sha256: str
    depends: tuple[str, ...] = ()

    def key(self) -> str:
        return self.name

    def describe(self) -> str:
        return f"{self.name}-{self.version}"


@lru_cache(maxsize=1 << 16)
def format_entry_line(entry: IndexEntry) -> str:
    """The canonical ``P:|V:|S:|H:|D:`` body line for one entry.

    Shared by the signed index body and the index-delta envelope
    (:mod:`repro.core.delta`), so a delta's ``U:`` records splice into a
    reconstructed body byte-identically.  Entries are frozen, so the
    line caches per entry: unchanged packages re-serialize for free
    across publications, quorum responses, and delta envelopes.
    """
    deps = ",".join(entry.depends)
    return (f"P:{entry.name}|V:{entry.version}|S:{entry.size}"
            f"|H:{entry.sha256}|D:{deps}")


@lru_cache(maxsize=1 << 16)
def parse_entry_line(line: str) -> IndexEntry:
    """Parse one canonical body line (inverse of :func:`format_entry_line`).

    Cached per line: an unchanged package contributes the same line to
    every publication and every mirror's response, so steady-state
    re-parses are dictionary hits (malformed lines are not cached —
    ``lru_cache`` does not memoize exceptions).
    """
    try:
        fields = dict(part.split(":", 1) for part in line.split("|"))
        return IndexEntry(
            name=fields["P"],
            version=fields["V"],
            size=int(fields["S"]),
            sha256=fields["H"],
            depends=tuple(d for d in fields["D"].split(",") if d),
        )
    except (KeyError, ValueError) as exc:
        raise PackagingError(f"malformed index line {line!r}: {exc}") from exc


@dataclass
class RepositoryIndex:
    """A signed snapshot of the repository contents.

    ``serial`` increases monotonically with every upstream publication; two
    honest mirrors serving the same snapshot present the same serial and
    the same body hash.
    """

    serial: int
    entries: dict[str, IndexEntry] = field(default_factory=dict)
    signature: bytes | None = None
    signer_fingerprint: str | None = None
    #: Lazily built canonical body; invalidated whenever ``serial`` or
    #: ``entries`` are rebound (``__setattr__``) or grown (``add``).
    _body: bytes | None = field(default=None, init=False, repr=False,
                                compare=False)

    def __setattr__(self, name, value):
        if name == "serial" or name == "entries":
            object.__setattr__(self, "_body", None)
        object.__setattr__(self, name, value)

    def add(self, entry: IndexEntry):
        self.entries[entry.key()] = entry
        self._body = None
        self.signature = None  # adding entries invalidates any signature

    def get(self, name: str) -> IndexEntry | None:
        return self.entries.get(name)

    def package_names(self) -> list[str]:
        return sorted(self.entries)

    def total_size(self) -> int:
        return sum(entry.size for entry in self.entries.values())

    # -- canonical body ----------------------------------------------------

    def body_bytes(self) -> bytes:
        """Canonical serialized body that the signature covers."""
        body = self._body
        if body is None:
            lines = [f"serial:{self.serial}"]
            for name in sorted(self.entries):
                lines.append(format_entry_line(self.entries[name]))
            body = ("\n".join(lines) + "\n").encode()
            object.__setattr__(self, "_body", body)
        return body

    def body_hash(self) -> str:
        return sha256_hex(self.body_bytes())

    # -- signing -----------------------------------------------------------

    def sign(self, key: RsaPrivateKey):
        self.signature = key.sign(self.body_bytes())
        self.signer_fingerprint = key.public_key.fingerprint()

    def verify(self, key: RsaPublicKey) -> bool:
        if self.signature is None:
            return False
        return key.verify(self.body_bytes(), self.signature)

    # -- wire format ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        if self.signature is None:
            raise SignatureError("refusing to serialize an unsigned index")
        header = f"sig:{self.signature.hex()}\n".encode()
        return header + self.body_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RepositoryIndex":
        text = blob.decode()
        lines = text.splitlines()
        if len(lines) < 2 or not lines[0].startswith("sig:"):
            raise PackagingError("malformed index: missing signature header")
        signature = bytes.fromhex(lines[0][len("sig:"):])
        if not lines[1].startswith("serial:"):
            raise PackagingError("malformed index: missing serial")
        serial = int(lines[1][len("serial:"):])
        index = cls(serial=serial)
        for line in lines[2:]:
            if not line.strip():
                continue
            entry = parse_entry_line(line)
            index.entries[entry.key()] = entry
        index.signature = signature
        return index

    def copy(self) -> "RepositoryIndex":
        clone = RepositoryIndex(serial=self.serial, entries=dict(self.entries))
        clone.signature = self.signature
        clone.signer_fingerprint = self.signer_fingerprint
        object.__setattr__(clone, "_body", self._body)
        return clone

    def diff_updated(self, older: "RepositoryIndex") -> list[IndexEntry]:
        """Entries that are new or changed relative to ``older``."""
        changed = []
        for name, entry in self.entries.items():
            previous = older.entries.get(name)
            if previous is None or previous.sha256 != entry.sha256:
                changed.append(entry)
        return sorted(changed, key=lambda e: e.name)


_PARSE_MEMO: dict[bytes, RepositoryIndex] = {}
_PARSE_MEMO_LIMIT = 512


def parse_index_cached(blob: bytes) -> RepositoryIndex:
    """Parse ``blob`` through a process-wide memo keyed by exact bytes.

    Quorum evaluation re-reads the same serialized index from every
    mirror in every widening wave, and the publication log replays the
    same blobs across rounds; this collapses those to one parse each.
    Returns a private :meth:`RepositoryIndex.copy` so callers may mutate
    the result without poisoning the memo.  Parse failures propagate and
    are not cached.
    """
    hit = _PARSE_MEMO.get(blob)
    if hit is None:
        if len(_PARSE_MEMO) >= _PARSE_MEMO_LIMIT:
            _PARSE_MEMO.clear()
        hit = RepositoryIndex.from_bytes(blob)
        _PARSE_MEMO[blob] = hit
    return hit.copy()
