"""TSR's on-disk package cache (paper section 5.5).

The cache lives on the *untrusted* local disk of the machine hosting TSR:
an adversary with root can read, replace, or roll back its contents at
will.  TSR therefore treats cache reads as untrusted input — before serving
a cached sanitized package, the enclave re-checks its hash against the
in-enclave sanitized index (see :mod:`repro.core.program`).

Both the original upstream blob and the sanitized blob are cached: the
former avoids re-downloading on re-sanitization, the latter turns a
download request into a disk read (Fig. 10's 129x).

Sharding: package blobs are spread over ``shards`` independent stores
(hash of ``repo_id/name``), so the pipelined refresh engine can account
concurrent reads and writes on different shards as overlapping — a lookup
no longer serializes behind an insert hitting another shard.  Shard 0's
filesystem doubles as the root ``disk`` holding non-package state (the
sealed freshness file), which keeps the single-disk layout of the paper's
deployment observable to tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256_bytes
from repro.osim.fs import SimFileSystem
from repro.util.errors import FileSystemError

ORIGINAL_PREFIX = "/var/cache/tsr/original"
SANITIZED_PREFIX = "/var/cache/tsr/sanitized"

DEFAULT_SHARDS = 8


@dataclass
class ShardStats:
    """Per-shard operation counters (reads include misses)."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0


class PackageCache:
    """Name-addressed blob store over the untrusted host filesystem."""

    def __init__(self, disk: SimFileSystem | None = None,
                 shards: int = DEFAULT_SHARDS):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1: {shards}")
        self.disk = disk or SimFileSystem()
        self._shards: list[SimFileSystem] = [self.disk]
        self._shards.extend(SimFileSystem() for _ in range(shards - 1))
        self._stats = [ShardStats() for _ in range(shards)]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, repo_id: str, name: str) -> int:
        """Stable shard assignment for one package's blobs."""
        digest = sha256_bytes(f"{repo_id}/{name}".encode())
        return int.from_bytes(digest[:4], "big") % len(self._shards)

    def shard_stats(self) -> list[ShardStats]:
        return list(self._stats)

    def _shard(self, repo_id: str, name: str) -> tuple[SimFileSystem, ShardStats]:
        index = self.shard_index(repo_id, name)
        return self._shards[index], self._stats[index]

    @staticmethod
    def _path(prefix: str, repo_id: str, name: str) -> str:
        return f"{prefix}/{repo_id}/{name}.apk"

    # -- originals ----------------------------------------------------------

    def put_original(self, repo_id: str, name: str, blob: bytes):
        shard, stats = self._shard(repo_id, name)
        stats.writes += 1
        shard.write_file(self._path(ORIGINAL_PREFIX, repo_id, name), blob)

    def get_original(self, repo_id: str, name: str) -> bytes | None:
        return self._read(repo_id, name, ORIGINAL_PREFIX)

    def has_original(self, repo_id: str, name: str) -> bool:
        shard, _ = self._shard(repo_id, name)
        return shard.isfile(self._path(ORIGINAL_PREFIX, repo_id, name))

    # -- sanitized ------------------------------------------------------------

    def put_sanitized(self, repo_id: str, name: str, blob: bytes):
        shard, stats = self._shard(repo_id, name)
        stats.writes += 1
        shard.write_file(self._path(SANITIZED_PREFIX, repo_id, name), blob)

    def get_sanitized(self, repo_id: str, name: str) -> bytes | None:
        return self._read(repo_id, name, SANITIZED_PREFIX)

    def has_sanitized(self, repo_id: str, name: str) -> bool:
        shard, _ = self._shard(repo_id, name)
        return shard.isfile(self._path(SANITIZED_PREFIX, repo_id, name))

    def invalidate(self, repo_id: str, name: str):
        shard, _ = self._shard(repo_id, name)
        for prefix in (ORIGINAL_PREFIX, SANITIZED_PREFIX):
            path = self._path(prefix, repo_id, name)
            if shard.isfile(path):
                shard.remove(path)

    # -- adversary surface -------------------------------------------------------

    def tamper_sanitized(self, repo_id: str, name: str, blob: bytes):
        """Root-adversary helper used by tests/benches: replace a cached
        sanitized package (e.g. with an outdated version) behind TSR's back."""
        shard, _ = self._shard(repo_id, name)
        shard.write_file(self._path(SANITIZED_PREFIX, repo_id, name), blob)

    def _read(self, repo_id: str, name: str, prefix: str) -> bytes | None:
        shard, stats = self._shard(repo_id, name)
        stats.reads += 1
        try:
            blob = shard.read_file(self._path(prefix, repo_id, name))
        except FileSystemError:
            stats.misses += 1
            return None
        stats.hits += 1
        return blob
