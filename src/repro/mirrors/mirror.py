"""Mirrors: honest replicas and the Byzantine behaviours of Figure 5."""

from __future__ import annotations

import enum

from repro.mirrors.repository import OriginalRepository, Snapshot
from repro.simnet.latency import DEFAULT_BANDWIDTH_BYTES_PER_S
from repro.util.errors import NetworkError, PackagingError


class MirrorBehavior(enum.Enum):
    """How a mirror treats its clients."""

    HONEST = "honest"
    #: Freeze attack: stop syncing; keep serving a stale (validly signed)
    #: snapshot so clients never learn updates exist.
    FREEZE = "freeze"
    #: Replay attack: deliberately serve an old snapshot containing
    #: packages with known vulnerabilities.
    REPLAY = "replay"
    #: Corrupt packages in flight (detected by index hash checks).
    CORRUPT = "corrupt"


class Mirror:
    """A repository replica reachable over the simulated network."""

    def __init__(self, name: str, origin: OriginalRepository,
                 behavior: MirrorBehavior = MirrorBehavior.HONEST,
                 pinned_serial: int | None = None,
                 bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S):
        if bandwidth <= 0:
            raise ValueError(f"mirror bandwidth must be positive: {bandwidth}")
        self.name = name
        self._origin = origin
        self.behavior = behavior
        #: Sustained serving bandwidth (bytes/s) this replica offers one
        #: stream; the simnet Host is wired with the same value, so parallel
        #: refresh spreads load across fast and slow mirrors differently.
        self.bandwidth = bandwidth
        self._snapshot: Snapshot = origin.snapshot()
        if pinned_serial is not None:
            self._snapshot = origin.snapshot_at(pinned_serial)
        self.requests_served = 0
        self.bytes_served = 0

    # -- sync -------------------------------------------------------------------

    def sync(self):
        """Pull the latest snapshot from the origin.

        Freeze/replay mirrors ignore sync — that is the attack: they keep
        presenting an old, validly signed state.
        """
        if self.behavior in (MirrorBehavior.FREEZE, MirrorBehavior.REPLAY):
            return
        self._snapshot = self._origin.snapshot()

    def pin_to(self, serial: int):
        """Point a replay mirror at a specific vulnerable snapshot."""
        self._snapshot = self._origin.snapshot_at(serial)

    @property
    def serial(self) -> int:
        return self._snapshot.serial

    # -- request handling (simnet Host handler) --------------------------------------

    def handle(self, operation: str, payload: object) -> tuple[object, int]:
        self.requests_served += 1
        if operation == "get_index":
            blob = self._snapshot.index_bytes
            self.bytes_served += len(blob)
            return blob, len(blob)
        if operation == "get_package":
            name = str(payload)
            if name not in self._snapshot.blobs:
                raise NetworkError(f"mirror {self.name}: no such package {name!r}")
            blob = self._snapshot.blobs[name]
            if self.behavior is MirrorBehavior.CORRUPT:
                blob = self._corrupt(blob)
            self.bytes_served += len(blob)
            return blob, len(blob)
        raise NetworkError(f"mirror {self.name}: unknown operation {operation!r}")

    @staticmethod
    def _corrupt(blob: bytes) -> bytes:
        if not blob:
            raise PackagingError("cannot corrupt an empty blob")
        tampered = bytearray(blob)
        tampered[len(tampered) // 2] ^= 0xFF
        return bytes(tampered)
